#include <gtest/gtest.h>

#include <set>

#include "workload/tpox_queries.h"
#include "workload/variation.h"
#include "workload/workload.h"
#include "workload/xmark_queries.h"

namespace xia {
namespace {

TEST(WorkloadTest, AddQueryTextAssignsIdsAndWeights) {
  Workload w;
  ASSERT_TRUE(
      w.AddQueryText("for $x in doc(\"c\")/a return $x", 2.5).ok());
  ASSERT_TRUE(w.AddQueryText("for $x in doc(\"c\")/b return $x", 1.0,
                             "custom")
                  .ok());
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.queries()[0].id, "Q1");
  EXPECT_EQ(w.queries()[0].weight, 2.5);
  EXPECT_EQ(w.queries()[1].id, "custom");
  EXPECT_EQ(w.TotalQueryWeight(), 3.5);
}

TEST(WorkloadTest, BadQueryTextRejected) {
  Workload w;
  EXPECT_FALSE(w.AddQueryText("not a query").ok());
  EXPECT_EQ(w.size(), 0u);
}

TEST(WorkloadTest, DescribeListsQueriesAndUpdates) {
  Workload w = MakeXMarkWorkload("xmark");
  AddXMarkUpdates(&w, "xmark", 1.0);
  std::string desc = w.Describe();
  EXPECT_NE(desc.find("queries"), std::string::npos);
  EXPECT_NE(desc.find("update"), std::string::npos);
  EXPECT_NE(desc.find("INSERT"), std::string::npos);
}

TEST(XMarkWorkloadTest, ContainsPaperExamplePatterns) {
  Workload w = MakeXMarkWorkload("xmark");
  EXPECT_GE(w.size(), 12u);
  // The running example: quantity queries over different regions, a price
  // query over a third region — the raw material for generalization.
  std::set<std::string> predicate_patterns;
  for (const Query& q : w.queries()) {
    EXPECT_EQ(q.normalized.collection, "xmark");
    for (const QueryPredicate& p : q.normalized.predicates) {
      predicate_patterns.insert(p.pattern.ToString());
    }
  }
  EXPECT_TRUE(
      predicate_patterns.count("/site/regions/namerica/item/quantity"));
  EXPECT_TRUE(
      predicate_patterns.count("/site/regions/africa/item/quantity"));
  EXPECT_TRUE(
      predicate_patterns.count("/site/regions/samerica/item/price"));
}

TEST(XMarkWorkloadTest, MixesLanguages) {
  Workload w = MakeXMarkWorkload("xmark");
  bool has_xquery = false;
  bool has_sqlxml = false;
  for (const Query& q : w.queries()) {
    if (q.language == QueryLanguage::kXQuery) has_xquery = true;
    if (q.language == QueryLanguage::kSqlXml) has_sqlxml = true;
  }
  EXPECT_TRUE(has_xquery);
  EXPECT_TRUE(has_sqlxml);
}

TEST(XMarkWorkloadTest, UpdatesScaleWithRate) {
  Workload w;
  AddXMarkUpdates(&w, "xmark", 2.0);
  ASSERT_EQ(w.updates().size(), 3u);
  EXPECT_EQ(w.updates()[0].weight, 20.0);  // Bids: 10 * rate.
  AddXMarkUpdates(&w, "xmark", 0.0);       // Rate 0: no-op.
  EXPECT_EQ(w.updates().size(), 3u);
}

TEST(TpoxWorkloadTest, SpansAllThreeCollections) {
  Workload w = MakeTpoxWorkload();
  std::set<std::string> collections;
  for (const Query& q : w.queries()) {
    collections.insert(q.normalized.collection);
  }
  EXPECT_EQ(collections,
            (std::set<std::string>{"custacc", "order", "security"}));
}

TEST(TpoxWorkloadTest, UpdatesTargetHotPaths) {
  Workload w;
  AddTpoxUpdates(&w, 1.0);
  ASSERT_EQ(w.updates().size(), 2u);
  EXPECT_EQ(w.updates()[0].target.ToString(), "/FIXML/Order");
}

TEST(VariationTest, UnseenWorkloadParsesAndVaries) {
  Random rng(17);
  Workload w = MakeXMarkUnseenWorkload("xmark", &rng, 20);
  EXPECT_EQ(w.size(), 20u);
  std::set<std::string> shapes;
  for (const Query& q : w.queries()) {
    EXPECT_EQ(q.normalized.collection, "xmark");
    shapes.insert(q.normalized.for_path.ToString());
  }
  // Variations hit multiple templates/regions, not one shape.
  EXPECT_GE(shapes.size(), 3u);
}

TEST(VariationTest, UnseenDeterministicPerSeed) {
  Random rng1(4), rng2(4);
  Workload a = MakeXMarkUnseenWorkload("xmark", &rng1, 5);
  Workload b = MakeXMarkUnseenWorkload("xmark", &rng2, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.queries()[i].text, b.queries()[i].text);
  }
}

TEST(VariationTest, TpoxUnseenParses) {
  Random rng(23);
  Workload w = MakeTpoxUnseenWorkload(&rng, 12);
  EXPECT_EQ(w.size(), 12u);
}

}  // namespace
}  // namespace xia
