#include <gtest/gtest.h>

#include "index/catalog.h"
#include "index/index_builder.h"
#include "index/virtual_index.h"
#include "storage/database.h"
#include "xpath/parser.h"

namespace xia {
namespace {

PathPattern P(const std::string& text) {
  Result<PathPattern> p = ParsePathPattern(text);
  EXPECT_TRUE(p.ok()) << text;
  return std::move(*p);
}

IndexDefinition Def(const std::string& name, const std::string& pattern,
                    ValueType type, const std::string& collection = "c") {
  IndexDefinition def;
  def.name = name;
  def.collection = collection;
  def.pattern = P(pattern);
  def.type = type;
  return def;
}

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateCollection("c").ok());
    ASSERT_TRUE(db_.LoadXml("c", R"(
      <items>
        <item><price>10</price><name>ring</name></item>
        <item><price>30</price><name>vase</name></item>
        <item><price>30</price><name>coin</name></item>
        <item><price>oops</price><name>lamp</name></item>
      </items>)").ok());
    ASSERT_TRUE(db_.Analyze("c").ok());
  }

  Database db_;
};

// ----------------------------------------------------------- Definition.

TEST_F(IndexTest, DdlStringMatchesDb2Shape) {
  IndexDefinition def = Def("idx_p", "/items/item/price",
                            ValueType::kDouble);
  EXPECT_EQ(def.DdlString(),
            "CREATE INDEX idx_p ON c(doc) GENERATE KEY USING XMLPATTERN "
            "'/items/item/price' AS SQL DOUBLE");
  EXPECT_NE(Def("a", "/x", ValueType::kVarchar).Key(),
            Def("a", "/x", ValueType::kDouble).Key());
}

// -------------------------------------------------------------- Builder.

TEST_F(IndexTest, DoubleIndexRejectsNonCastable) {
  Result<PathIndex> index =
      BuildIndex(db_, Def("i", "/items/item/price", ValueType::kDouble));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_entries(), 3u);  // "oops" rejected.
}

TEST_F(IndexTest, VarcharIndexKeepsEverything) {
  Result<PathIndex> index =
      BuildIndex(db_, Def("i", "/items/item/price", ValueType::kVarchar));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_entries(), 4u);
}

TEST_F(IndexTest, StructuralVarcharIndexesValuelessNodes) {
  Result<PathIndex> index =
      BuildIndex(db_, Def("i", "/items/item", ValueType::kVarchar));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_entries(), 4u);  // Every item, empty-string keys.
  EXPECT_EQ(index->AllNodes().size(), 4u);
}

TEST_F(IndexTest, BuildFailsOnMissingCollection) {
  Result<PathIndex> index =
      BuildIndex(db_, Def("i", "/x", ValueType::kVarchar, "ghost"));
  EXPECT_FALSE(index.ok());
}

// -------------------------------------------------------------- Lookups.

TEST_F(IndexTest, LookupEq) {
  Result<PathIndex> index =
      BuildIndex(db_, Def("i", "/items/item/price", ValueType::kDouble));
  ASSERT_TRUE(index.ok());
  auto key = TypedValue::Make(ValueType::kDouble, "30");
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(index->LookupEq(*key).size(), 2u);
  auto missing = TypedValue::Make(ValueType::kDouble, "999");
  EXPECT_TRUE(index->LookupEq(*missing).empty());
}

TEST_F(IndexTest, LookupRangeBounds) {
  Result<PathIndex> index =
      BuildIndex(db_, Def("i", "/items/item/price", ValueType::kDouble));
  ASSERT_TRUE(index.ok());
  auto v10 = TypedValue::Make(ValueType::kDouble, "10");
  auto v30 = TypedValue::Make(ValueType::kDouble, "30");
  // (10, inf): the two 30s.
  EXPECT_EQ(index->LookupRange(v10, false, std::nullopt, false).size(), 2u);
  // [10, inf): all three.
  EXPECT_EQ(index->LookupRange(v10, true, std::nullopt, false).size(), 3u);
  // (-inf, 30): just 10.
  EXPECT_EQ(index->LookupRange(std::nullopt, false, v30, false).size(), 1u);
  // [10, 30]: all three.
  EXPECT_EQ(index->LookupRange(v10, true, v30, true).size(), 3u);
}

TEST_F(IndexTest, VarcharLookupLexicographic) {
  Result<PathIndex> index =
      BuildIndex(db_, Def("i", "/items/item/name", ValueType::kVarchar));
  ASSERT_TRUE(index.ok());
  auto key = TypedValue::Make(ValueType::kVarchar, "ring");
  EXPECT_EQ(index->LookupEq(*key).size(), 1u);
  // Range [coin, ring): coin, lamp.
  auto lo = TypedValue::Make(ValueType::kVarchar, "coin");
  auto hi = TypedValue::Make(ValueType::kVarchar, "ring");
  EXPECT_EQ(index->LookupRange(lo, true, hi, false).size(), 2u);
}

TEST_F(IndexTest, SizeAndHeightPositive) {
  Result<PathIndex> index =
      BuildIndex(db_, Def("i", "/items/item/name", ValueType::kVarchar));
  ASSERT_TRUE(index.ok());
  StorageConstants constants;
  EXPECT_GT(index->ByteSize(constants), 0.0);
  EXPECT_GE(index->LeafPages(constants), 1.0);
  EXPECT_GE(index->Height(constants), 1);
}

// --------------------------------------------------------- Virtual index.

TEST_F(IndexTest, VirtualEstimateMatchesPhysicalEntryCount) {
  StorageConstants constants;
  const PathSynopsis* synopsis = db_.synopsis("c");
  ASSERT_NE(synopsis, nullptr);
  for (auto type : {ValueType::kVarchar, ValueType::kDouble}) {
    IndexDefinition def = Def("i", "/items/item/price", type);
    VirtualIndexStats est = EstimateVirtualIndex(*synopsis, def, constants);
    Result<PathIndex> built = BuildIndex(db_, def);
    ASSERT_TRUE(built.ok());
    EXPECT_EQ(est.entries, static_cast<double>(built->num_entries()))
        << ValueTypeName(type);
    // Sizes agree within 50% (key-size averaging differs slightly).
    double actual = built->ByteSize(constants);
    if (actual > 0) {
      EXPECT_NEAR(est.size_bytes / actual, 1.0, 0.5);
    }
  }
}

TEST_F(IndexTest, StatsFromPhysicalCountsDistinct) {
  Result<PathIndex> index =
      BuildIndex(db_, Def("i", "/items/item/price", ValueType::kDouble));
  ASSERT_TRUE(index.ok());
  VirtualIndexStats stats = StatsFromPhysical(*index, StorageConstants());
  EXPECT_EQ(stats.entries, 3.0);
  EXPECT_EQ(stats.distinct, 2.0);  // 10 and 30.
}

// --------------------------------------------------------------- Catalog.

TEST_F(IndexTest, CatalogAddFindDrop) {
  Catalog catalog;
  StorageConstants constants;
  Result<PathIndex> built =
      BuildIndex(db_, Def("idx1", "/items/item/price", ValueType::kDouble));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(catalog
                  .AddPhysical(std::make_shared<PathIndex>(std::move(*built)),
                               constants)
                  .ok());
  ASSERT_TRUE(catalog
                  .AddVirtual(Def("idx2", "/items/item/name",
                                  ValueType::kVarchar),
                              VirtualIndexStats{})
                  .ok());
  EXPECT_EQ(catalog.size(), 2u);
  const CatalogEntry* phys = catalog.Find("idx1");
  ASSERT_NE(phys, nullptr);
  EXPECT_FALSE(phys->is_virtual);
  ASSERT_NE(phys->physical, nullptr);
  const CatalogEntry* virt = catalog.Find("idx2");
  ASSERT_NE(virt, nullptr);
  EXPECT_TRUE(virt->is_virtual);
  EXPECT_EQ(catalog.IndexesFor("c").size(), 2u);
  EXPECT_TRUE(catalog.IndexesFor("other").empty());
  EXPECT_TRUE(catalog.Drop("idx1").ok());
  EXPECT_EQ(catalog.Find("idx1"), nullptr);
  EXPECT_FALSE(catalog.Drop("idx1").ok());
}

TEST_F(IndexTest, CatalogRejectsDuplicateNames) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddVirtual(Def("dup", "/a", ValueType::kVarchar),
                              VirtualIndexStats{})
                  .ok());
  EXPECT_FALSE(catalog
                   .AddVirtual(Def("dup", "/b", ValueType::kVarchar),
                               VirtualIndexStats{})
                   .ok());
}

TEST_F(IndexTest, CatalogCopyIsIndependentOverlay) {
  Catalog base;
  ASSERT_TRUE(base.AddVirtual(Def("i1", "/a", ValueType::kVarchar),
                              VirtualIndexStats{})
                  .ok());
  Catalog overlay = base;
  ASSERT_TRUE(overlay
                  .AddVirtual(Def("i2", "/b", ValueType::kVarchar),
                              VirtualIndexStats{})
                  .ok());
  EXPECT_EQ(overlay.size(), 2u);
  EXPECT_EQ(base.size(), 1u);  // Base untouched: virtual indexes invisible.
}

TEST_F(IndexTest, UniqueNameAvoidsCollisions) {
  Catalog catalog;
  PathPattern p = P("/items/item/price");
  std::string first = catalog.UniqueName(p);
  ASSERT_TRUE(catalog
                  .AddVirtual(Def(first, "/items/item/price",
                                  ValueType::kVarchar),
                              VirtualIndexStats{})
                  .ok());
  std::string second = catalog.UniqueName(p);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace xia
