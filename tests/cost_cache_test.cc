// Signature-keyed what-if cost cache equivalence: caching must be
// invisible in every observable output — per-query and workload costs,
// used-candidate sets, evaluation counts, and full recommendations are
// required to be bit-identical with the cache on and off, at any thread
// count — while the hit/miss/bypass counters themselves stay
// deterministic. Also pins the memo-key canonicalization contract
// (CanonicalKey is the single normalization point for Evaluate and
// EvaluateMany) and the relevance predicate's consistency with the
// matcher.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/benefit.h"
#include "advisor/cost_cache.h"
#include "advisor/whatif.h"
#include "index/index_matcher.h"
#include "optimizer/explain.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"
#include "xpath/parser.h"

namespace xia {
namespace {

PathPattern P(const std::string& text) {
  Result<PathPattern> p = ParsePathPattern(text);
  EXPECT_TRUE(p.ok()) << text;
  return std::move(*p);
}

class CostCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&db_, "xmark", 6, params, 42).ok());
    workload_ = MakeXMarkWorkload("xmark");

    candidates_.push_back(
        Cand("/site/regions/namerica/item/quantity", ValueType::kDouble));
    candidates_.push_back(
        Cand("/site/regions/*/item/quantity", ValueType::kDouble));
    candidates_.push_back(Cand("/site/regions/*/item/*", ValueType::kDouble));
    candidates_.push_back(Cand("/site/regions/*/item/*", ValueType::kVarchar));
    candidates_.push_back(Cand("//item/payment", ValueType::kVarchar));
    candidates_.push_back(
        Cand("/site/people/person/profile/@income", ValueType::kDouble));
  }

  CandidateIndex Cand(const std::string& pattern, ValueType type) {
    CandidateIndex c;
    c.def.collection = "xmark";
    c.def.pattern = P(pattern);
    c.def.type = type;
    c.stats = EstimateVirtualIndex(*db_.synopsis("xmark"), c.def,
                                   cost_model_.storage);
    return c;
  }

  /// A fresh evaluator with its own containment cache.
  struct Rig {
    std::unique_ptr<Optimizer> optimizer;
    std::unique_ptr<ContainmentCache> cache;
    std::unique_ptr<ConfigurationEvaluator> evaluator;
  };
  Rig MakeRig(int threads, bool use_cost_cache) {
    Rig rig;
    rig.optimizer = std::make_unique<Optimizer>(&db_, cost_model_);
    rig.cache = std::make_unique<ContainmentCache>();
    rig.evaluator = std::make_unique<ConfigurationEvaluator>(
        rig.optimizer.get(), &workload_, &base_catalog_, &candidates_,
        rig.cache.get(), /*account_update_cost=*/true, threads,
        use_cost_cache);
    return rig;
  }

  static void ExpectIdentical(const ConfigurationEvaluator::Evaluation& a,
                              const ConfigurationEvaluator::Evaluation& b) {
    EXPECT_EQ(a.workload_cost, b.workload_cost);  // Bitwise: no tolerance.
    EXPECT_EQ(a.update_cost, b.update_cost);
    EXPECT_EQ(a.per_query_cost, b.per_query_cost);
    EXPECT_EQ(a.used_candidates, b.used_candidates);
  }

  Database db_;
  Workload workload_;
  Catalog base_catalog_;
  CostModel cost_model_;
  std::vector<CandidateIndex> candidates_;
};

// The configurations every equivalence test walks: empty, singletons,
// overlapping pairs, the full set, and permuted/duplicated inputs.
std::vector<std::vector<int>> TestConfigs() {
  return {{},        {0},     {1},   {2},     {3},
          {4},       {5},     {0, 1}, {1, 4},  {0, 1, 2, 3, 4, 5},
          {5, 3, 1}, {1, 3, 5}};
}

TEST_F(CostCacheTest, EvaluateIdenticalWithAndWithoutCache) {
  for (int threads : {1, 4}) {
    Rig cached = MakeRig(threads, /*use_cost_cache=*/true);
    Rig uncached = MakeRig(threads, /*use_cost_cache=*/false);
    for (const std::vector<int>& config : TestConfigs()) {
      Result<ConfigurationEvaluator::Evaluation> c =
          cached.evaluator->Evaluate(config);
      Result<ConfigurationEvaluator::Evaluation> u =
          uncached.evaluator->Evaluate(config);
      ASSERT_TRUE(c.ok());
      ASSERT_TRUE(u.ok());
      ExpectIdentical(*c, *u);
    }
    // Configuration-evaluation counts are cache-independent: the cache
    // saves optimizer calls *inside* an evaluation, never evaluations.
    EXPECT_EQ(cached.evaluator->num_evaluations(),
              uncached.evaluator->num_evaluations());
    // The cached rig actually cached: signatures repeat across these
    // overlapping configurations, so hits must have happened.
    CostCacheStats stats = cached.evaluator->cost_cache().stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.misses, 0u);
    EXPECT_GT(stats.entries, 0u);
    EXPECT_EQ(stats.bypasses, 0u);
  }
}

TEST_F(CostCacheTest, EvaluateManyIdenticalWithAndWithoutCache) {
  for (int threads : {1, 4}) {
    Rig cached = MakeRig(threads, /*use_cost_cache=*/true);
    Rig uncached = MakeRig(threads, /*use_cost_cache=*/false);
    std::vector<std::vector<int>> configs = TestConfigs();
    std::vector<Result<ConfigurationEvaluator::Evaluation>> c =
        cached.evaluator->EvaluateMany(configs);
    std::vector<Result<ConfigurationEvaluator::Evaluation>> u =
        uncached.evaluator->EvaluateMany(configs);
    ASSERT_EQ(c.size(), configs.size());
    ASSERT_EQ(u.size(), configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
      ASSERT_TRUE(c[i].ok());
      ASSERT_TRUE(u[i].ok());
      ExpectIdentical(*c[i], *u[i]);
    }
    EXPECT_EQ(cached.evaluator->num_evaluations(),
              uncached.evaluator->num_evaluations());
  }
}

TEST_F(CostCacheTest, CountersDeterministicAcrossThreadCounts) {
  // Hit/miss/bypass counting happens only in serial phases, so the exact
  // counter values — not just the costs — must match between a serial and
  // a 4-thread run of the same call sequence.
  auto run = [&](int threads, bool use_cache) {
    Rig rig = MakeRig(threads, use_cache);
    for (const std::vector<int>& config : TestConfigs()) {
      EXPECT_TRUE(rig.evaluator->Evaluate(config).ok());
    }
    EXPECT_TRUE(rig.evaluator->EvaluateMany(TestConfigs()).size() > 0);
    return rig.evaluator->cost_cache().stats();
  };
  for (bool use_cache : {true, false}) {
    CostCacheStats serial = run(1, use_cache);
    CostCacheStats parallel = run(4, use_cache);
    EXPECT_EQ(serial.hits, parallel.hits);
    EXPECT_EQ(serial.misses, parallel.misses);
    EXPECT_EQ(serial.bypasses, parallel.bypasses);
    EXPECT_EQ(serial.entries, parallel.entries);
  }
}

TEST_F(CostCacheTest, DisabledCacheCountsBypasses) {
  Rig rig = MakeRig(1, /*use_cost_cache=*/false);
  ASSERT_TRUE(rig.evaluator->Evaluate({0, 1}).ok());
  CostCacheStats stats = rig.evaluator->cost_cache().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
  // One bypass per query of the one evaluated configuration.
  EXPECT_EQ(stats.bypasses, workload_.queries().size());
}

TEST_F(CostCacheTest, RepeatedQueriesShareCachedPlans) {
  // A workload with every query duplicated: fingerprint classes collapse
  // the duplicates, so the second copy of each query never misses.
  Workload doubled;
  for (const Query& q : workload_.queries()) doubled.AddQuery(q);
  for (const Query& q : workload_.queries()) doubled.AddQuery(q);
  Optimizer optimizer(&db_, cost_model_);
  ContainmentCache cache;
  ConfigurationEvaluator evaluator(&optimizer, &doubled, &base_catalog_,
                                   &candidates_, &cache,
                                   /*account_update_cost=*/true, 1, true);
  ASSERT_TRUE(evaluator.Evaluate({0, 1, 2}).ok());
  CostCacheStats stats = evaluator.cost_cache().stats();
  // Every lookup of the first evaluation misses (the cache starts empty
  // and inserts happen after the serial lookup phase), but duplicate
  // queries dedupe onto shared plan tasks: at most one optimizer call —
  // hence one cached plan — per distinct query.
  EXPECT_EQ(stats.misses, doubled.queries().size());
  EXPECT_LE(stats.entries, workload_.queries().size());
  // A follow-up configuration hits for every query whose relevant-index
  // set did not change (candidate 5 serves only the @income query).
  ASSERT_TRUE(evaluator.Evaluate({0, 1, 2, 5}).ok());
  EXPECT_GT(evaluator.cost_cache().stats().hits, 0u);
}

TEST_F(CostCacheTest, MemoKeyCanonicalizationEvaluate) {
  // Permutations and duplicates of one configuration are the same memo
  // entry: one evaluation, identical results (regression for the
  // CanonicalKey contract in benefit.h).
  Rig rig = MakeRig(1, /*use_cost_cache=*/true);
  Result<ConfigurationEvaluator::Evaluation> a =
      rig.evaluator->Evaluate({0, 2, 4});
  int after_first = rig.evaluator->num_evaluations();
  Result<ConfigurationEvaluator::Evaluation> b =
      rig.evaluator->Evaluate({4, 0, 2});
  Result<ConfigurationEvaluator::Evaluation> c =
      rig.evaluator->Evaluate({2, 2, 0, 4, 4});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ExpectIdentical(*a, *b);
  ExpectIdentical(*a, *c);
  EXPECT_EQ(rig.evaluator->num_evaluations(), after_first);
}

TEST_F(CostCacheTest, MemoKeyCanonicalizationAcrossEvaluateAndEvaluateMany) {
  // EvaluateMany must canonicalize exactly like Evaluate: a batch of
  // permuted/duplicated variants resolves to one evaluation, and a later
  // Evaluate of any variant is a memo hit.
  Rig rig = MakeRig(4, /*use_cost_cache=*/true);
  std::vector<std::vector<int>> variants = {
      {0, 2, 4}, {4, 2, 0}, {2, 0, 4, 0}, {4, 4, 2, 0}};
  std::vector<Result<ConfigurationEvaluator::Evaluation>> batch =
      rig.evaluator->EvaluateMany(variants);
  ASSERT_EQ(batch.size(), variants.size());
  for (const auto& r : batch) ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < batch.size(); ++i) {
    ExpectIdentical(*batch[0], *batch[i]);
  }
  EXPECT_EQ(rig.evaluator->num_evaluations(), 1);
  Result<ConfigurationEvaluator::Evaluation> again =
      rig.evaluator->Evaluate({2, 4, 0});
  ASSERT_TRUE(again.ok());
  ExpectIdentical(*batch[0], *again);
  EXPECT_EQ(rig.evaluator->num_evaluations(), 1);  // Memo hit, no new work.
}

TEST_F(CostCacheTest, CanServeAgreesWithMatch) {
  // The relevance predicate behind the signatures is defined as "Match
  // emits at least one IndexMatch" — pin that equivalence so the two can
  // never drift apart.
  ContainmentCache cache;
  IndexMatcher matcher(&cache);
  for (const Query& q : workload_.queries()) {
    for (const CandidateIndex& cand : candidates_) {
      CatalogEntry entry;
      entry.def = cand.def;
      bool via_match = !matcher.Match(q.normalized, {&entry}).empty();
      EXPECT_EQ(matcher.CanServe(q.normalized, cand.def), via_match)
          << cand.def.pattern.ToString();
    }
  }
}

TEST_F(CostCacheTest, RecommendationsIdenticalWithAndWithoutCache) {
  for (SearchAlgorithm algo :
       {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyHeuristic,
        SearchAlgorithm::kTopDown}) {
    for (int threads : {1, 4}) {
      Recommendation recs[2];
      bool cache_settings[2] = {true, false};
      for (int s = 0; s < 2; ++s) {
        AdvisorOptions options;
        options.algorithm = algo;
        options.space_budget_bytes = 128.0 * 1024;
        options.threads = threads;
        options.what_if_cost_cache = cache_settings[s];
        Advisor advisor(&db_, &base_catalog_, options);
        Result<Recommendation> rec = advisor.Recommend(workload_);
        ASSERT_TRUE(rec.ok()) << SearchAlgorithmName(algo);
        recs[s] = std::move(*rec);
      }
      EXPECT_EQ(recs[0].search.chosen, recs[1].search.chosen)
          << SearchAlgorithmName(algo);
      EXPECT_EQ(recs[0].search.workload_cost, recs[1].search.workload_cost)
          << SearchAlgorithmName(algo);
      EXPECT_EQ(recs[0].search.update_cost, recs[1].search.update_cost);
      EXPECT_EQ(recs[0].search.baseline_cost, recs[1].search.baseline_cost);
      EXPECT_EQ(recs[0].search.evaluations, recs[1].search.evaluations)
          << SearchAlgorithmName(algo);
      ASSERT_EQ(recs[0].indexes.size(), recs[1].indexes.size());
      for (size_t i = 0; i < recs[0].indexes.size(); ++i) {
        EXPECT_EQ(recs[0].indexes[i].DdlString(),
                  recs[1].indexes[i].DdlString());
      }
      // The cached run hit; the uncached run only bypassed.
      EXPECT_GT(recs[0].search.counters.cost.hits, 0u)
          << SearchAlgorithmName(algo);
      EXPECT_EQ(recs[1].search.counters.cost.hits, 0u);
      EXPECT_GT(recs[1].search.counters.cost.bypasses, 0u);
      // The deterministic counters line is the trace tail either way.
      ASSERT_FALSE(recs[0].search.trace.empty());
      EXPECT_EQ(recs[0].search.trace.back(),
                recs[0].search.counters.TraceLine());
    }
  }
}

TEST_F(CostCacheTest, WhatIfSessionIdenticalAcrossCacheAndEdits) {
  // Drive cached and uncached sessions through the same add/drop/evaluate
  // script; every evaluation must coincide bit-for-bit, and the cached
  // session must hit on re-evaluations (identity-carrying signatures make
  // AddIndex/DropIndex self-invalidating — no explicit invalidation).
  WhatIfSession cached(&db_, base_catalog_, cost_model_, 1,
                       /*use_cost_cache=*/true);
  WhatIfSession uncached(&db_, base_catalog_, cost_model_, 1,
                         /*use_cost_cache=*/false);

  auto expect_same_eval = [&]() {
    Result<EvaluateIndexesResult> c = cached.EvaluateWorkload(workload_);
    Result<EvaluateIndexesResult> u = uncached.EvaluateWorkload(workload_);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(u.ok());
    EXPECT_EQ(c->total_weighted_cost, u->total_weighted_cost);
    EXPECT_EQ(c->index_use_counts, u->index_use_counts);
    ASSERT_EQ(c->plans.size(), u->plans.size());
    for (size_t i = 0; i < c->plans.size(); ++i) {
      EXPECT_EQ(PlanFingerprint(c->plans[i]), PlanFingerprint(u->plans[i]));
      EXPECT_EQ(c->plans[i].query_id, u->plans[i].query_id);
    }
  };

  expect_same_eval();
  uint64_t hits_before = cached.cache_counters().cost.hits;
  expect_same_eval();  // Unchanged catalog: every query hits.
  uint64_t hits_after = cached.cache_counters().cost.hits;
  EXPECT_GE(hits_after - hits_before, workload_.queries().size());

  IndexDefinition def;
  def.collection = "xmark";
  def.pattern = P("/site/regions/*/item/quantity");
  def.type = ValueType::kDouble;
  ASSERT_TRUE(cached.AddIndex(def).ok());
  ASSERT_TRUE(uncached.AddIndex(def).ok());
  expect_same_eval();  // Affected queries re-optimize, others hit.

  ASSERT_TRUE(cached.DropIndex(cached.session_indexes().front()).ok());
  ASSERT_TRUE(uncached.DropIndex(uncached.session_indexes().front()).ok());
  hits_before = cached.cache_counters().cost.hits;
  expect_same_eval();  // Keys revert to the pre-add ones: all hits again.
  hits_after = cached.cache_counters().cost.hits;
  EXPECT_GE(hits_after - hits_before, workload_.queries().size());

  // ExplainQuery routes through the same cache.
  Result<QueryPlan> first = cached.ExplainQuery(workload_.queries()[0]);
  Result<QueryPlan> second = cached.ExplainQuery(workload_.queries()[0]);
  Result<QueryPlan> fresh = uncached.ExplainQuery(workload_.queries()[0]);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(PlanFingerprint(*first), PlanFingerprint(*second));
  EXPECT_EQ(PlanFingerprint(*first), PlanFingerprint(*fresh));
  EXPECT_EQ(second->query_id, workload_.queries()[0].id);
}

TEST_F(CostCacheTest, EvaluateIndexesModeSharedCacheAcrossCalls) {
  Optimizer optimizer(&db_, cost_model_);
  ContainmentCache cache;
  WhatIfCostCache cost_cache(/*enabled=*/true);
  std::vector<IndexDefinition> config = {candidates_[1].def};

  Result<EvaluateIndexesResult> first =
      EvaluateIndexesMode(optimizer, workload_.queries(), config,
                          base_catalog_, &cache, nullptr, &cost_cache);
  ASSERT_TRUE(first.ok());
  CostCacheStats stats = cost_cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);

  Result<EvaluateIndexesResult> second =
      EvaluateIndexesMode(optimizer, workload_.queries(), config,
                          base_catalog_, &cache, nullptr, &cost_cache);
  ASSERT_TRUE(second.ok());
  // Same overlay: every query resolves from the cache, bit-identically.
  EXPECT_EQ(cost_cache.stats().hits - stats.hits,
            workload_.queries().size());
  EXPECT_EQ(first->total_weighted_cost, second->total_weighted_cost);
  EXPECT_EQ(first->index_use_counts, second->index_use_counts);
  for (size_t i = 0; i < first->plans.size(); ++i) {
    EXPECT_EQ(PlanFingerprint(first->plans[i]),
              PlanFingerprint(second->plans[i]));
  }

  // A null cache pointer is the legacy path and stays valid.
  Result<EvaluateIndexesResult> bare =
      EvaluateIndexesMode(optimizer, workload_.queries(), config,
                          base_catalog_, &cache, nullptr, nullptr);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->total_weighted_cost, first->total_weighted_cost);
}

}  // namespace
}  // namespace xia
