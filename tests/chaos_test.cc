// Deterministic chaos: seeded fault schedules against a live server
// under retrying-client load. Each round arms bounded failpoint bursts
// (server.accept / server.read / server.write) while client threads run
// idempotent traffic, then disarms everything and asserts convergence:
//
//   - every logical call eventually returned a real server reply (the
//     retry layer absorbed every injected fault — zero give-ups, since
//     each burst trips a bounded number of times, well inside the retry
//     budget);
//   - the obs ledger reconciles: client.retries grew at least as much
//     as the failpoints tripped (each trip costs some client exactly
//     one re-attempt, discovered no later than the convergence pass);
//   - the server itself survives — a post-chaos ping answers within the
//     per-attempt budget, so no worker stayed pinned.
//
// The schedule is a pure function of the seed (seeded client op mix,
// seeded fault bursts, deterministic retry jitter), run for three
// distinct seeds. A separate case crashes a WAL-backed server mid-life
// (drop the engine without Close) with a wal.append fault injected and
// healed along the way, and proves the recovered fingerprint matches.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/retrying_client.h"
#include "server/server.h"
#include "server/session.h"
#include "storage/storage_engine.h"
#include "xmldata/xmark_gen.h"

namespace xia {
namespace server {
namespace {

RetryPolicy ChaosPolicy(uint64_t seed) {
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff_ms = 2;
  policy.max_backoff_ms = 30;
  policy.jitter = 0.2;
  policy.jitter_seed = seed;
  policy.attempt_budget_ms = 2000;  // No call may hang, ever.
  return policy;
}

/// One seeded chaos round; every invariant violation is a gtest failure.
void RunChaosRound(uint64_t seed) {
  fp::DisarmAll();
  SharedState shared;
  ASSERT_TRUE(PopulateXMark(&shared.db, "xmark", 2, XMarkParams(), 42).ok());

  ServerOptions options;
  options.tcp_port = 0;
  options.workers = 4;
  options.max_connections = 8;
  options.max_inflight_advises = 2;
  options.io_timeout_ms = 200;
  Server srv(&shared, options);
  ASSERT_TRUE(srv.Start().ok());

  obs::Snapshot before = obs::Registry().TakeSnapshot();

  // Client load: idempotent verbs only, so every injected fault is
  // retryable and zero give-ups is a hard invariant.
  constexpr int kClients = 3;
  constexpr int kOps = 15;
  const std::vector<std::string> kVerbs = {
      "ping", "health", "ready", "stats", "show catalog",
      "run /site/regions", "show workload"};
  std::vector<uint64_t> giveups(kClients, 0);
  std::vector<uint64_t> retries(kClients, 0);
  std::vector<int> failed_calls(kClients, 0);
  std::atomic<bool> chaos_done{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(seed * 31 + static_cast<uint64_t>(c));
      RetryingClient client(srv.port(), ChaosPolicy(seed + c));
      client.set_prologue({"workload xmark"});
      for (int op = 0; op < kOps; ++op) {
        const std::string& verb = kVerbs[rng() % kVerbs.size()];
        Result<std::string> reply = client.Call(verb);
        if (!reply.ok()) ++failed_calls[c];
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1 + static_cast<int>(rng() % 4)));
      }
      // Stay connected (light pings) until every fault is disarmed, so
      // a trip that lands on this connection — including one that would
      // otherwise hit our closing EOF — is paid for by a counted retry;
      // closing while faults are armed races the I2 ledger below.
      while (!chaos_done.load(std::memory_order_acquire)) {
        if (!client.Call("ping").ok()) ++failed_calls[c];
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
      if (!client.Call("ping").ok()) ++failed_calls[c];
      giveups[c] = client.giveups();
      retries[c] = client.retries();
      client.Close();
    });
  }

  // Fault schedule: bounded bursts, each tripping 1-2 times then going
  // quiet — so the total damage is finite and retries must absorb it.
  std::thread chaos([&] {
    std::mt19937_64 rng(seed);
    const char* kTargets[] = {"server.read", "server.write",
                              "server.accept"};
    for (int burst = 0; burst < 6; ++burst) {
      fp::FailSpec spec;
      spec.code = StatusCode::kInternal;
      spec.max_trips = 1 + static_cast<int>(rng() % 2);
      fp::Arm(kTargets[rng() % 3], spec);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(5 + static_cast<int>(rng() % 15)));
    }
    fp::DisarmAll();
    chaos_done.store(true, std::memory_order_release);
  });

  for (std::thread& t : clients) t.join();
  chaos.join();
  fp::DisarmAll();

  // Convergence: faults are gone, so a fresh call must succeed fast.
  RetryingClient probe(srv.port(), ChaosPolicy(seed));
  Result<std::string> ping = probe.Call("ping");
  ASSERT_TRUE(ping.ok()) << "post-chaos ping: " << ping.status().ToString();
  EXPECT_EQ(ClassifyResponse(*ping), ResponseKind::kOk);
  Result<std::string> healthy = probe.Call("health");
  ASSERT_TRUE(healthy.ok());
  probe.Close();

  uint64_t total_giveups = 0;
  uint64_t total_retries = 0;
  int total_failed = 0;
  for (int c = 0; c < kClients; ++c) {
    total_giveups += giveups[c];
    total_retries += retries[c];
    total_failed += failed_calls[c];
  }
  EXPECT_EQ(total_giveups, 0u)
      << "seed " << seed << ": bounded faults must be absorbed by retries";
  EXPECT_EQ(total_failed, 0)
      << "seed " << seed << ": every idempotent call must converge to a "
      << "real reply";

  // Ledger reconciliation: each failpoint trip dropped one connection
  // (or refused one accept), which some retrying client had to pay for
  // with at least one re-attempt — discovered at latest by its next op.
  obs::Snapshot after = obs::Registry().TakeSnapshot();
  uint64_t trips = (after.counter("failpoint.server.read.trips") -
                    before.counter("failpoint.server.read.trips")) +
                   (after.counter("failpoint.server.write.trips") -
                    before.counter("failpoint.server.write.trips")) +
                   (after.counter("failpoint.server.accept.trips") -
                    before.counter("failpoint.server.accept.trips"));
  EXPECT_GT(trips, 0u) << "seed " << seed
                       << ": the schedule should actually inject faults";
  EXPECT_GE(after.counter("client.retries") - before.counter("client.retries"),
            trips)
      << "seed " << seed << ": every trip must surface as a client retry";
  EXPECT_EQ(after.counter("client.giveups"),
            before.counter("client.giveups"));

  srv.RequestStop();
  srv.Wait();
  EXPECT_EQ(srv.active_connections(), 0);
}

TEST(ChaosTest, Seed7) { RunChaosRound(7); }
TEST(ChaosTest, Seed21) { RunChaosRound(21); }
TEST(ChaosTest, Seed42) { RunChaosRound(42); }

// ---------------------------------------------------------------------
// Crash-recovery under injected WAL faults, driven over the wire.

TEST(ChaosTest, KillThenReopenRecoversFingerprintDespiteWalFault) {
  namespace fs = std::filesystem;
  fs::path scratch = fs::temp_directory_path() / "xia_chaos_recovery";
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  fs::path xml = scratch / "doc.xml";
  {
    std::ofstream file(xml);
    file << "<site><item><price>7</price></item></site>";
  }
  const std::string db_dir = (scratch / "db").string();
  storage::StorageOptions no_sync;
  no_sync.sync = false;

  auto open_into = [&](SharedState* shared) {
    Result<std::unique_ptr<storage::StorageEngine>> opened =
        storage::StorageEngine::Open(
            db_dir, &shared->db, &shared->catalog, &shared->buffer_pool,
            shared->default_options.cost_model.storage, no_sync);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    shared->engine = std::move(*opened);
  };

  std::string fingerprint;
  {
    SharedState shared;
    open_into(&shared);
    ServerOptions options;
    options.tcp_port = 0;
    Server srv(&shared, options);
    ASSERT_TRUE(srv.Start().ok());
    RetryingClient client(srv.port(), ChaosPolicy(42));

    // Injected WAL-append failure: the load is refused and the WAL
    // poisons itself (it cannot trust its tail).
    {
      fp::FailSpec spec;
      spec.max_trips = 1;
      fp::ScopedFailpoint armed("storage.wal.append", spec);
      Result<std::string> refused =
          client.Call("load docs " + xml.string());
      ASSERT_TRUE(refused.ok()) << refused.status().ToString();
      EXPECT_EQ(refused->find("loaded 1 document"), std::string::npos)
          << *refused;
    }
    // Heal: a checkpoint rewrites the page file and resets the WAL.
    Result<std::string> healed = client.Call("db checkpoint");
    ASSERT_TRUE(healed.ok());
    EXPECT_NE(healed->find("checkpointed"), std::string::npos) << *healed;

    // Now the mutations succeed and are WAL-logged.
    Result<std::string> loaded = client.Call("load docs " + xml.string());
    ASSERT_TRUE(loaded.ok());
    EXPECT_NE(loaded->find("loaded 1 document"), std::string::npos)
        << *loaded;
    Result<std::string> analyzed = client.Call("analyze docs");
    ASSERT_TRUE(analyzed.ok());
    EXPECT_NE(analyzed->find("statistics rebuilt"), std::string::npos);

    client.Close();
    srv.RequestStop();
    srv.Wait();
    fingerprint =
        storage::StorageEngine::StateFingerprint(shared.db, shared.catalog);
    // Kill: the engine is dropped without Close() — no final checkpoint;
    // recovery has only the page file + WAL to work from.
  }
  {
    SharedState shared;
    open_into(&shared);
    EXPECT_TRUE(shared.engine->recovery().opened_existing);
    EXPECT_EQ(
        storage::StorageEngine::StateFingerprint(shared.db, shared.catalog),
        fingerprint)
        << "post-crash recovery must reproduce the pre-kill state";
    ASSERT_NE(shared.db.GetCollection("docs"), nullptr);
  }
  fs::remove_all(scratch);
}

}  // namespace
}  // namespace server
}  // namespace xia
