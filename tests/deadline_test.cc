// Deadline/CancelToken unit behavior plus the anytime-search contract:
// a Recommend() whose budget fires must still return a valid, flagged
// best-so-far Recommendation, and an ungoverned run must be untouched by
// the governance plumbing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "common/deadline.h"
#include "common/failpoint.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"

namespace xia {
namespace {

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMillis(), INT64_MAX);
  EXPECT_TRUE(Deadline::Infinite().infinite());
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  // Deterministic without sleeping: the clamp makes a zero/negative
  // budget an immediately-expired deadline, which the anytime tests rely
  // on.
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).Expired());
  EXPECT_FALSE(Deadline::AfterMillis(0).infinite());
  EXPECT_LE(Deadline::AfterMillis(0).RemainingMillis(), 0);
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  Deadline d = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 0);
}

TEST(DeadlineTest, StopReasonNames) {
  EXPECT_STREQ(StopReasonName(StopReason::kConverged), "converged");
  EXPECT_STREQ(StopReasonName(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(StopReasonName(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(StopReasonName(StopReason::kError), "error");
}

TEST(CancelTokenTest, DefaultTokenIsInert) {
  CancelToken token;
  EXPECT_FALSE(token.CanBeCancelled());
  EXPECT_FALSE(token.Cancelled());
  token.Cancel();  // No-op, not a crash.
  EXPECT_FALSE(token.Cancelled());
}

TEST(CancelTokenTest, CancellableFiresAndIsShared) {
  CancelToken token = CancelToken::Cancellable();
  CancelToken copy = token;  // Shared state: both observe the flag.
  EXPECT_TRUE(token.CanBeCancelled());
  EXPECT_FALSE(token.Cancelled());
  copy.Cancel();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_TRUE(copy.Cancelled());
  token.Cancel();  // Idempotent.
  EXPECT_TRUE(token.Cancelled());
}

TEST(CancelTokenTest, ChildObservesParentButNotViceVersa) {
  CancelToken parent = CancelToken::Cancellable();
  CancelToken child = parent.Child();
  CancelToken sibling = parent.Child();
  EXPECT_TRUE(child.CanBeCancelled());
  // Cancelling a child leaves the parent and siblings untouched.
  child.Cancel();
  EXPECT_TRUE(child.Cancelled());
  EXPECT_FALSE(parent.Cancelled());
  EXPECT_FALSE(sibling.Cancelled());
  // Cancelling the parent fires every remaining descendant.
  parent.Cancel();
  EXPECT_TRUE(sibling.Cancelled());
}

TEST(CancelTokenTest, ChildOfInertTokenIsAPlainRoot) {
  CancelToken inert;
  CancelToken child = inert.Child();
  EXPECT_TRUE(child.CanBeCancelled());
  child.Cancel();
  EXPECT_TRUE(child.Cancelled());
  EXPECT_FALSE(inert.Cancelled());
}

/// XMark database + workload shared by the advisor-level tests.
class AnytimeAdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&db_, "xmark", 6, params, 42).ok());
    workload_ = MakeXMarkWorkload("xmark");
  }

  Result<Recommendation> Run(AdvisorOptions options) {
    options.space_budget_bytes = 128.0 * 1024;
    options.threads = 2;
    Advisor advisor(&db_, &catalog_, options);
    return advisor.Recommend(workload_);
  }

  Database db_;
  Catalog catalog_;
  Workload workload_;
};

TEST_F(AnytimeAdvisorTest, ExpiredBudgetStillYieldsValidRecommendation) {
  for (SearchAlgorithm algo :
       {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyHeuristic,
        SearchAlgorithm::kTopDown}) {
    // Make every what-if optimization sleep so a 1ms budget is guaranteed
    // to expire during the search, deterministically, on any machine.
    fp::FailSpec slow;
    slow.code = StatusCode::kOk;  // Latency-only: never fails.
    slow.latency_ms = 5;
    fp::ScopedFailpoint armed("advisor.whatif.optimize", slow);

    AdvisorOptions options;
    options.algorithm = algo;
    options.time_budget_ms = 1;
    Result<Recommendation> rec = Run(options);
    ASSERT_TRUE(rec.ok()) << SearchAlgorithmName(algo);
    EXPECT_EQ(rec->stop_reason, StopReason::kDeadline)
        << SearchAlgorithmName(algo);
    EXPECT_EQ(rec->search.stop_reason, StopReason::kDeadline);
    // Best-so-far is still a valid recommendation: non-negative benefit,
    // within budget, flagged in the report and the trace.
    EXPECT_GE(rec->benefit, 0.0) << SearchAlgorithmName(algo);
    EXPECT_LE(rec->total_size_bytes, 128.0 * 1024);
    EXPECT_NE(rec->Report().find("WARNING"), std::string::npos);
    bool traced = false;
    for (const std::string& line : rec->search.trace) {
      if (line.find("budget exhausted") != std::string::npos) traced = true;
    }
    EXPECT_TRUE(traced) << SearchAlgorithmName(algo);
  }
}

TEST_F(AnytimeAdvisorTest, PreCancelledTokenStopsEveryAlgorithm) {
  for (SearchAlgorithm algo :
       {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyHeuristic,
        SearchAlgorithm::kTopDown}) {
    AdvisorOptions options;
    options.algorithm = algo;
    options.cancel = CancelToken::Cancellable();
    options.cancel.Cancel();  // Fired before the search even starts.
    Result<Recommendation> rec = Run(options);
    ASSERT_TRUE(rec.ok()) << SearchAlgorithmName(algo);
    EXPECT_EQ(rec->stop_reason, StopReason::kCancelled)
        << SearchAlgorithmName(algo);
    EXPECT_GE(rec->benefit, 0.0);
    EXPECT_NE(rec->Report().find("WARNING"), std::string::npos);
  }
}

TEST_F(AnytimeAdvisorTest, UngovernedRunMatchesLiveTokenNeverFired) {
  // The governance plumbing must be invisible when nothing fires: a run
  // with an armed-but-silent token and no budget is bit-identical to the
  // default ungoverned run.
  for (SearchAlgorithm algo :
       {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyHeuristic,
        SearchAlgorithm::kTopDown}) {
    AdvisorOptions plain;
    plain.algorithm = algo;
    Result<Recommendation> a = Run(plain);

    AdvisorOptions governed;
    governed.algorithm = algo;
    governed.cancel = CancelToken::Cancellable();  // Never fired.
    Result<Recommendation> b = Run(governed);

    ASSERT_TRUE(a.ok() && b.ok()) << SearchAlgorithmName(algo);
    EXPECT_EQ(a->stop_reason, StopReason::kConverged);
    EXPECT_EQ(b->stop_reason, StopReason::kConverged);
    EXPECT_EQ(a->search.chosen, b->search.chosen);
    EXPECT_EQ(a->search.workload_cost, b->search.workload_cost);
    EXPECT_EQ(a->search.trace, b->search.trace);
    EXPECT_EQ(a->benefit, b->benefit);
    EXPECT_EQ(a->Report(), b->Report());
    EXPECT_EQ(a->Report().find("WARNING"), std::string::npos);
  }
}

}  // namespace
}  // namespace xia
