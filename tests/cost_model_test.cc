#include <gtest/gtest.h>

#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "query/value.h"
#include "storage/database.h"
#include "xpath/parser.h"

namespace xia {
namespace {

// -------------------------------------------------------------- CostModel.

TEST(CostModelUnitTest, RidProbeCheaperThanFetchingScan) {
  CostModel cm;
  VirtualIndexStats stats;
  stats.entries = 10000;
  stats.leaf_pages = 50;
  stats.height = 2;
  // Same probe, RID-only vs full (fetching) scan.
  double rid = cm.IndexRidProbeCost(stats, 0.1, 1000, false);
  double full = cm.IndexScanCost(stats, 0.1, 1000, false);
  EXPECT_LT(rid, full);
  // The difference is exactly the fetches.
  EXPECT_NEAR(full - rid,
              1000 * cm.fetch_cost_per_node - 1000 * cm.cpu_cost_per_node,
              1e-9);
}

TEST(CostModelUnitTest, VerificationChargesCpu) {
  CostModel cm;
  VirtualIndexStats stats;
  stats.entries = 1000;
  stats.leaf_pages = 10;
  stats.height = 2;
  EXPECT_NEAR(cm.IndexRidProbeCost(stats, 1.0, 1000, true) -
                  cm.IndexRidProbeCost(stats, 1.0, 1000, false),
              1000 * cm.cpu_cost_per_verify, 1e-9);
}

TEST(CostModelUnitTest, LeafFractionClamped) {
  CostModel cm;
  VirtualIndexStats stats;
  stats.entries = 100;
  stats.leaf_pages = 10;
  stats.height = 1;
  EXPECT_EQ(cm.IndexScanCost(stats, 5.0, 0, false),
            cm.IndexScanCost(stats, 1.0, 0, false));
  EXPECT_EQ(cm.IndexScanCost(stats, -1.0, 0, false),
            cm.IndexScanCost(stats, 0.0, 0, false));
}

TEST(CostModelUnitTest, ResidualScalesWithRowsAndPredicates) {
  CostModel cm;
  EXPECT_EQ(cm.ResidualPredicateCost(0, 5), 0.0);
  EXPECT_EQ(cm.ResidualPredicateCost(100, 0), 0.0);
  EXPECT_NEAR(cm.ResidualPredicateCost(100, 2),
              2 * cm.ResidualPredicateCost(100, 1), 1e-9);
  EXPECT_NEAR(cm.ResidualPredicateCost(200, 1),
              2 * cm.ResidualPredicateCost(100, 1), 1e-9);
}

TEST(CostModelUnitTest, UpdateMaintenanceLinear) {
  CostModel cm;
  EXPECT_EQ(cm.UpdateMaintenanceCost(0), 0.0);
  EXPECT_NEAR(cm.UpdateMaintenanceCost(10), 10 * cm.update_cost_per_entry,
              1e-9);
}

// ------------------------------------------------------------ Plan output.

IndexDefinition Def(const std::string& name, const std::string& pattern,
                    ValueType type) {
  IndexDefinition def;
  def.name = name;
  def.collection = "c";
  Result<PathPattern> p = ParsePathPattern(pattern);
  EXPECT_TRUE(p.ok());
  def.pattern = *p;
  def.type = type;
  return def;
}

TEST(PlanRenderTest, CollectionScan) {
  AccessPath access;
  access.use_index = false;
  EXPECT_EQ(access.ToString(), "COLLECTION SCAN");
}

TEST(PlanRenderTest, SingleProbeVariants) {
  AccessPath access;
  access.use_index = true;
  access.index_def = Def("i", "/a/b", ValueType::kDouble);
  access.use = MatchUse::kSargableEq;
  access.index_is_virtual = false;
  EXPECT_EQ(access.ToString(), "INDEX EQ-PROBE i ('/a/b' AS DOUBLE)");
  access.use = MatchUse::kSargableRange;
  access.index_is_virtual = true;
  access.needs_verify = true;
  EXPECT_EQ(access.ToString(),
            "INDEX RANGE-SCAN i ('/a/b' AS DOUBLE) [virtual] +verify");
  access.use = MatchUse::kStructural;
  access.index_is_virtual = false;
  access.needs_verify = false;
  EXPECT_EQ(access.ToString(), "INDEX SCAN i ('/a/b' AS DOUBLE)");
}

TEST(PlanRenderTest, IxandShowsBothProbes) {
  AccessPath access;
  access.use_index = true;
  access.index_def = Def("one", "/a/b", ValueType::kDouble);
  access.use = MatchUse::kSargableRange;
  access.index_is_virtual = false;
  access.has_secondary = true;
  access.secondary.index_def = Def("two", "/a/c", ValueType::kVarchar);
  access.secondary.use = MatchUse::kSargableEq;
  access.secondary.index_is_virtual = false;
  std::string s = access.ToString();
  EXPECT_NE(s.find("one"), std::string::npos);
  EXPECT_NE(s.find("IXAND"), std::string::npos);
  EXPECT_NE(s.find("two"), std::string::npos);
}

TEST(PlanRenderTest, ExplainListsResiduals) {
  QueryPlan plan;
  plan.query_id = "Q9";
  plan.query.collection = "c";
  Result<PathPattern> fp = ParsePathPattern("/a");
  ASSERT_TRUE(fp.ok());
  plan.query.for_path = *fp;
  QueryPredicate pred;
  Result<PathPattern> pp = ParsePathPattern("/a/b");
  ASSERT_TRUE(pp.ok());
  pred.pattern = *pp;
  pred.op = CompareOp::kGt;
  pred.literal = "5";
  plan.query.predicates.push_back(pred);
  plan.residual_predicates.push_back(0);
  plan.total_cost = 12.5;
  std::string explain = plan.Explain();
  EXPECT_NE(explain.find("Q9"), std::string::npos);
  EXPECT_NE(explain.find("Residual predicates"), std::string::npos);
  EXPECT_NE(explain.find("/a/b > 5"), std::string::npos);
}

// ------------------------------------------- Histogram-based selectivity.

class HistogramSelectivityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateCollection("c").ok());
    std::string xml = "<root>";
    for (int i = 1; i <= 100; ++i) {
      xml += "<v>" + std::to_string(i) + "</v>";
    }
    xml += "<s>text</s></root>";
    ASSERT_TRUE(db_.LoadXml("c", xml).ok());
    ASSERT_TRUE(db_.Analyze("c").ok());
    ASSERT_NE(db_.synopsis("c"), nullptr);
  }

  PathPattern P(const std::string& text) {
    Result<PathPattern> p = ParsePathPattern(text);
    EXPECT_TRUE(p.ok()) << text;
    return std::move(*p);
  }

  Database db_;
};

TEST_F(HistogramSelectivityTest, RangeBoundariesAreInclusive) {
  CardinalityEstimator est(db_.synopsis("c"));
  // Probe exactly at the maximum value: the closed-interval contract means
  // <= max covers everything and > max covers nothing. Before the
  // boundary fix, a probe equal to the last bucket's upper bound fell past
  // the histogram's end.
  auto le_max = est.HistogramSelectivity(P("/root/v"), CompareOp::kLe, "100");
  ASSERT_TRUE(le_max.has_value());
  EXPECT_DOUBLE_EQ(*le_max, 1.0);
  auto gt_max = est.HistogramSelectivity(P("/root/v"), CompareOp::kGt, "100");
  ASSERT_TRUE(gt_max.has_value());
  EXPECT_DOUBLE_EQ(*gt_max, 0.0);
  // Below the minimum: nothing <= it, everything > it.
  auto le_min = est.HistogramSelectivity(P("/root/v"), CompareOp::kLt, "0");
  ASSERT_TRUE(le_min.has_value());
  EXPECT_DOUBLE_EQ(*le_min, 0.0);
  auto ge_min = est.HistogramSelectivity(P("/root/v"), CompareOp::kGe, "0");
  ASSERT_TRUE(ge_min.has_value());
  EXPECT_DOUBLE_EQ(*ge_min, 1.0);
}

TEST_F(HistogramSelectivityTest, MidRangeIsMonotoneAndSane) {
  CardinalityEstimator est(db_.synopsis("c"));
  auto le25 = est.HistogramSelectivity(P("/root/v"), CompareOp::kLe, "25");
  auto le75 = est.HistogramSelectivity(P("/root/v"), CompareOp::kLe, "75");
  ASSERT_TRUE(le25.has_value());
  ASSERT_TRUE(le75.has_value());
  EXPECT_GT(*le25, 0.0);
  EXPECT_LT(*le25, *le75);
  EXPECT_LT(*le75, 1.0);
  EXPECT_NEAR(*le25, 0.25, 0.15);  // 100 uniform values; coarse buckets.
  auto eq = est.HistogramSelectivity(P("/root/v"), CompareOp::kEq, "50");
  ASSERT_TRUE(eq.has_value());
  EXPECT_GT(*eq, 0.0);
  EXPECT_LT(*eq, 0.5);
  // Equality probes outside every bucket match nothing.
  auto eq_out =
      est.HistogramSelectivity(P("/root/v"), CompareOp::kEq, "1000");
  ASSERT_TRUE(eq_out.has_value());
  EXPECT_DOUBLE_EQ(*eq_out, 0.0);
}

TEST_F(HistogramSelectivityTest, NulloptWhenNotEstimable) {
  CardinalityEstimator est(db_.synopsis("c"));
  // Non-numeric literal against a numeric path.
  EXPECT_FALSE(est.HistogramSelectivity(P("/root/v"), CompareOp::kLe, "abc")
                   .has_value());
  // Path whose values are all non-numeric: no histogram to probe.
  EXPECT_FALSE(est.HistogramSelectivity(P("/root/s"), CompareOp::kLe, "5")
                   .has_value());
  // kExists needs no histogram at all.
  auto exists =
      est.HistogramSelectivity(P("/root/v"), CompareOp::kExists, "");
  ASSERT_TRUE(exists.has_value());
  EXPECT_DOUBLE_EQ(*exists, 1.0);
}

// Regression tests for the LIVE wiring: PredicateSelectivity (through
// PathSynopsis::SelectivityFor and SelectivityFromStats) now estimates
// ordering predicates from the histogram, clamped to the Laplace floor.
TEST_F(HistogramSelectivityTest, LivePathUsesHistogramForOrderingOps) {
  const PathSynopsis* syn = db_.synopsis("c");
  CardinalityEstimator est(syn);
  const AggValueStats& agg = syn->AggregateValues(P("/root/v"));

  QueryPredicate pred;
  pred.pattern = P("/root/v");
  pred.op = CompareOp::kLe;
  pred.literal = "25";
  auto hist = est.HistogramSelectivity(P("/root/v"), CompareOp::kLe, "25");
  ASSERT_TRUE(hist.has_value());
  // Mid-range probe: no clamping applies, so the live estimate IS the
  // histogram estimate (not the Laplace sample count).
  EXPECT_DOUBLE_EQ(est.PredicateSelectivity(pred), *hist);
  EXPECT_DOUBLE_EQ(SelectivityFromStats(agg, CompareOp::kLe, "25"), *hist);
}

TEST_F(HistogramSelectivityTest, LivePathClampsBoundariesToLaplaceFloor) {
  const PathSynopsis* syn = db_.synopsis("c");
  CardinalityEstimator est(syn);
  const AggValueStats& agg = syn->AggregateValues(P("/root/v"));
  const double floor =
      0.5 / (static_cast<double>(agg.sample.size()) + 1.0);

  // The unclamped boundary values are exactly 0.0 / 1.0 (the closed-
  // interval contract above); the live path must keep the cost model
  // strictly inside (0, 1).
  QueryPredicate gt_max;
  gt_max.pattern = P("/root/v");
  gt_max.op = CompareOp::kGt;
  gt_max.literal = "100";
  EXPECT_DOUBLE_EQ(est.PredicateSelectivity(gt_max), floor);

  QueryPredicate le_max = gt_max;
  le_max.op = CompareOp::kLe;
  EXPECT_DOUBLE_EQ(est.PredicateSelectivity(le_max), 1.0 - floor);

  EXPECT_DOUBLE_EQ(SelectivityFromStats(agg, CompareOp::kLt, "0"), floor);
  EXPECT_DOUBLE_EQ(SelectivityFromStats(agg, CompareOp::kGe, "0"),
                   1.0 - floor);
}

TEST_F(HistogramSelectivityTest, LivePathFallsBackWhenHistogramCannotHelp) {
  const PathSynopsis* syn = db_.synopsis("c");
  const AggValueStats& num = syn->AggregateValues(P("/root/v"));
  const AggValueStats& str = syn->AggregateValues(P("/root/s"));

  // Equality keeps Laplace sample counting even though a histogram
  // exists: the reservoir sample is frequency-aware, the uniform-within-
  // bucket spread is not.
  EXPECT_DOUBLE_EQ(SelectivityFromStats(num, CompareOp::kEq, "50"),
                   EstimateSelectivity(num, CompareOp::kEq, "50"));
  // Non-numeric literal and non-numeric value population: both fall back.
  EXPECT_DOUBLE_EQ(SelectivityFromStats(num, CompareOp::kLe, "abc"),
                   EstimateSelectivity(num, CompareOp::kLe, "abc"));
  EXPECT_DOUBLE_EQ(SelectivityFromStats(str, CompareOp::kLt, "5"),
                   EstimateSelectivity(str, CompareOp::kLt, "5"));
  // No statistics at all: the 0.1 default guess survives the wiring.
  AggValueStats empty;
  EXPECT_DOUBLE_EQ(SelectivityFromStats(empty, CompareOp::kGt, "5"), 0.1);
}

// ------------------------------------------------------------ TypedValue.

TEST(TypedValueTest, DoubleOrderingIsNumeric) {
  auto a = TypedValue::Make(ValueType::kDouble, "9");
  auto b = TypedValue::Make(ValueType::kDouble, "10");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(*a < *b);  // Lexicographically "10" < "9"; numerically not.
  EXPECT_FALSE(*b < *a);
}

TEST(TypedValueTest, VarcharOrderingIsLexicographic) {
  auto a = TypedValue::Make(ValueType::kVarchar, "10");
  auto b = TypedValue::Make(ValueType::kVarchar, "9");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(*a < *b);
}

TEST(TypedValueTest, DoubleRejectsNonNumeric) {
  EXPECT_FALSE(TypedValue::Make(ValueType::kDouble, "abc").has_value());
  EXPECT_FALSE(TypedValue::Make(ValueType::kDouble, "").has_value());
  EXPECT_TRUE(TypedValue::Make(ValueType::kVarchar, "abc").has_value());
  EXPECT_TRUE(TypedValue::Make(ValueType::kVarchar, "").has_value());
}

TEST(TypedValueTest, ToStringRendersByType) {
  EXPECT_EQ(TypedValue::Make(ValueType::kDouble, "42")->ToString(), "42");
  EXPECT_EQ(TypedValue::Make(ValueType::kVarchar, "x y")->ToString(),
            "x y");
}

}  // namespace
}  // namespace xia
