// xia::fp failpoint registry: arming semantics (codes, nth, arg
// matching, trip quotas, latency-only), the spec/env grammar, obs
// integration, and a sweep over the wired-in hooks proving injected
// faults surface as clean Statuses.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "advisor/whatif.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "index/catalog.h"
#include "index/index_builder.h"
#include "storage/buffer_pool.h"
#include "storage/collection_io.h"
#include "storage/database.h"

namespace xia {
namespace {

/// A function with a hook, standing in for any fallible layer.
Status GuardedOperation(int64_t arg = -1) {
  XIA_FAILPOINT_ARG("test.guarded_op", arg);
  return Status::Ok();
}

/// Every test starts and ends with nothing armed; trip counters are
/// process-cumulative (they survive Disarm by design), so tests measure
/// deltas.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::DisarmAll(); }
  void TearDown() override { fp::DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedHookIsInvisible) {
  EXPECT_FALSE(fp::AnyArmed());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_TRUE(fp::ArmedNames().empty());
}

TEST_F(FailpointTest, ArmedHookReturnsConfiguredStatus) {
  uint64_t trips_before = fp::Trips("test.guarded_op");
  fp::FailSpec spec;
  spec.code = StatusCode::kNotFound;
  spec.message = "injected outage";
  fp::Arm("test.guarded_op", spec);
  EXPECT_TRUE(fp::AnyArmed());
  ASSERT_EQ(fp::ArmedNames(), std::vector<std::string>{"test.guarded_op"});

  Status status = GuardedOperation();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "injected outage");
  EXPECT_EQ(fp::Trips("test.guarded_op"), trips_before + 1);

  EXPECT_TRUE(fp::Disarm("test.guarded_op"));
  EXPECT_FALSE(fp::Disarm("test.guarded_op"));  // Already disarmed.
  EXPECT_TRUE(GuardedOperation().ok());
  // Trip totals survive disarm (retained obs counters).
  EXPECT_EQ(fp::Trips("test.guarded_op"), trips_before + 1);
}

TEST_F(FailpointTest, DefaultMessageNamesTheFailpoint) {
  fp::ScopedFailpoint armed("test.guarded_op", fp::FailSpec{});
  Status status = GuardedOperation();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("test.guarded_op"), std::string::npos);
}

TEST_F(FailpointTest, EveryNthTripsOnMultiplesOnly) {
  fp::FailSpec spec;
  spec.every_nth = 3;
  fp::ScopedFailpoint armed("test.guarded_op", spec);
  std::vector<bool> outcomes;
  for (int i = 0; i < 6; ++i) outcomes.push_back(GuardedOperation().ok());
  EXPECT_EQ(outcomes,
            (std::vector<bool>{true, true, false, true, true, false}));
}

TEST_F(FailpointTest, ArgMatchingIsSchedulingIndependent) {
  fp::FailSpec spec;
  spec.match_arg = 2;
  fp::ScopedFailpoint armed("test.guarded_op", spec);
  EXPECT_TRUE(GuardedOperation(0).ok());
  EXPECT_TRUE(GuardedOperation(1).ok());
  EXPECT_FALSE(GuardedOperation(2).ok());
  EXPECT_TRUE(GuardedOperation(3).ok());
  EXPECT_TRUE(GuardedOperation(-1).ok());  // No-arg hits don't match.
  EXPECT_FALSE(GuardedOperation(2).ok());  // Still armed: every match.
}

TEST_F(FailpointTest, TripQuotaStopsInjecting) {
  fp::FailSpec spec;
  spec.max_trips = 2;
  fp::ScopedFailpoint armed("test.guarded_op", spec);
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());  // Quota exhausted.
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FailpointTest, LatencyOnlySleepsButNeverFails) {
  uint64_t trips_before = fp::Trips("test.guarded_op");
  fp::FailSpec spec;
  spec.code = StatusCode::kOk;
  spec.latency_ms = 1;
  fp::ScopedFailpoint armed("test.guarded_op", spec);
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(fp::Trips("test.guarded_op"), trips_before + 1);
}

TEST_F(FailpointTest, RearmResetsNthAndQuotaCounting) {
  fp::FailSpec spec;
  spec.every_nth = 2;
  fp::Arm("test.guarded_op", spec);
  EXPECT_TRUE(GuardedOperation().ok());   // Hit 1.
  fp::Arm("test.guarded_op", spec);       // Re-arm: counting restarts.
  EXPECT_TRUE(GuardedOperation().ok());   // Hit 1 again, not hit 2.
  EXPECT_FALSE(GuardedOperation().ok());  // Hit 2 trips.
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    fp::ScopedFailpoint armed("test.guarded_op", fp::FailSpec{});
    EXPECT_FALSE(GuardedOperation().ok());
  }
  EXPECT_FALSE(fp::AnyArmed());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FailpointTest, TripsAppearInObsSnapshot) {
  fp::ScopedFailpoint armed("test.guarded_op", fp::FailSpec{});
  (void)GuardedOperation();
  obs::Snapshot snapshot = obs::Registry().TakeSnapshot();
  EXPECT_GE(snapshot.counter("failpoint.test.guarded_op.trips"), 1u);
  EXPECT_NE(snapshot.ToText("").find("failpoint.test.guarded_op.trips"),
            std::string::npos);
}

TEST_F(FailpointTest, ArmFromSpecGrammar) {
  ASSERT_TRUE(
      fp::ArmFromSpec("test.guarded_op=error:NotFound,arg:2,trips:1").ok());
  EXPECT_TRUE(GuardedOperation(0).ok());
  Status status = GuardedOperation(2);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(GuardedOperation(2).ok());  // trips:1 quota spent.

  // "off" disarms through the same grammar.
  ASSERT_TRUE(fp::ArmFromSpec("test.guarded_op=off").ok());
  EXPECT_FALSE(fp::AnyArmed());

  // sleep alone = latency-only (never fails).
  ASSERT_TRUE(fp::ArmFromSpec("test.guarded_op=sleep:1").ok());
  EXPECT_TRUE(GuardedOperation().ok());
  fp::DisarmAll();

  // Grammar violations are clean InvalidArguments, nothing gets armed.
  EXPECT_FALSE(fp::ArmFromSpec("no-equals-sign").ok());
  EXPECT_FALSE(fp::ArmFromSpec("=error").ok());
  EXPECT_FALSE(fp::ArmFromSpec("x=error:NoSuchCode").ok());
  EXPECT_FALSE(fp::ArmFromSpec("x=nth:0").ok());
  EXPECT_FALSE(fp::ArmFromSpec("x=arg:-1").ok());
  EXPECT_FALSE(fp::ArmFromSpec("x=trips:0").ok());
  EXPECT_FALSE(fp::ArmFromSpec("x=sleep:-1").ok());
  EXPECT_FALSE(fp::ArmFromSpec("x=bogus").ok());
  EXPECT_FALSE(fp::AnyArmed());
}

TEST_F(FailpointTest, ArmFromEnv) {
  ASSERT_EQ(
      setenv("XIA_FP_TEST", "test.guarded_op=error:OutOfRange; ;", 1), 0);
  ASSERT_TRUE(fp::ArmFromEnv("XIA_FP_TEST").ok());
  EXPECT_EQ(GuardedOperation().code(), StatusCode::kOutOfRange);
  fp::DisarmAll();

  ASSERT_EQ(setenv("XIA_FP_TEST", "garbage", 1), 0);
  EXPECT_FALSE(fp::ArmFromEnv("XIA_FP_TEST").ok());

  ASSERT_EQ(unsetenv("XIA_FP_TEST"), 0);
  EXPECT_TRUE(fp::ArmFromEnv("XIA_FP_TEST").ok());  // Missing var is OK.
  EXPECT_FALSE(fp::AnyArmed());
}

// ---- Wired-in hooks: injected faults surface as clean Statuses. ----

TEST_F(FailpointTest, CollectionIoHooksFire) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "xia_failpoint_collection";
  fs::remove_all(dir);

  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.LoadXml("c", "<a><b>1</b></a>").ok());
  ASSERT_TRUE(SaveCollectionToDirectory(db, "c", dir.string()).ok());

  {
    fp::FailSpec spec;
    spec.code = StatusCode::kInternal;
    spec.message = "injected read error";
    fp::ScopedFailpoint armed("storage.collection_io.read", spec);
    Database reload;
    Result<size_t> loaded =
        LoadCollectionFromDirectory(&reload, "c", dir.string());
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().message(), "injected read error");
  }
  {
    fp::ScopedFailpoint armed("storage.collection_io.write", fp::FailSpec{});
    EXPECT_FALSE(SaveCollectionToDirectory(db, "c", dir.string()).ok());
  }
  EXPECT_GE(fp::Trips("storage.collection_io.read"), 1u);
  EXPECT_GE(fp::Trips("storage.collection_io.write"), 1u);
  fs::remove_all(dir);
}

TEST_F(FailpointTest, BufferPoolFetchHookFires) {
  BufferPool pool(4);
  ASSERT_TRUE(pool.Fetch(7).ok());
  fp::FailSpec spec;
  spec.match_arg = 7;  // Hit argument is the page id.
  fp::ScopedFailpoint armed("storage.bufferpool.fetch", spec);
  EXPECT_TRUE(pool.Fetch(3).ok());
  EXPECT_FALSE(pool.Fetch(7).ok());
}

TEST_F(FailpointTest, CatalogDdlHookFires) {
  fp::ScopedFailpoint armed("index.catalog.ddl", fp::FailSpec{});
  Catalog catalog;
  IndexDefinition def;
  def.name = "idx_x";
  def.collection = "c";
  EXPECT_FALSE(catalog.AddVirtual(def, VirtualIndexStats{}).ok());
  EXPECT_FALSE(catalog.Drop("idx_x").ok());
  EXPECT_GE(fp::Trips("index.catalog.ddl"), 2u);
}

TEST_F(FailpointTest, IndexBuilderHookFires) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.LoadXml("c", "<a><b>1</b></a>").ok());
  IndexDefinition def;
  def.name = "idx_b";
  def.collection = "c";
  fp::ScopedFailpoint armed("index.builder.build", fp::FailSpec{});
  EXPECT_FALSE(BuildIndex(db, def).ok());
}

TEST_F(FailpointTest, WhatIfEvaluateWorkloadHookFires) {
  Database db;
  WhatIfSession session(&db, Catalog{}, CostModel{}, /*threads=*/1);
  fp::FailSpec spec;
  spec.code = StatusCode::kResourceExhausted;
  fp::ScopedFailpoint armed("advisor.whatif.evaluate_workload", spec);
  Result<EvaluateIndexesResult> result = session.EvaluateWorkload(Workload{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace xia
