#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "xpath/containment.h"
#include "xpath/nfa.h"
#include "xpath/parser.h"

namespace xia {
namespace {

PathPattern P(const std::string& text) {
  Result<PathPattern> p = ParsePathPattern(text);
  EXPECT_TRUE(p.ok()) << text;
  return std::move(*p);
}

// ------------------------------------------------------------------- NFA.

std::vector<PatternSymbol> Word(
    const std::vector<std::string>& names) {
  std::vector<PatternSymbol> out;
  for (const std::string& n : names) {
    PatternSymbol sym;
    if (!n.empty() && n[0] == '@') {
      sym.is_attr = true;
      sym.name = n.substr(1);
    } else {
      sym.name = n;
    }
    out.push_back(sym);
  }
  return out;
}

TEST(PatternNfaTest, ChildAxisExactMatch) {
  PatternNfa nfa(P("/a/b"));
  EXPECT_TRUE(nfa.MatchesWord(Word({"a", "b"})));
  EXPECT_FALSE(nfa.MatchesWord(Word({"a"})));
  EXPECT_FALSE(nfa.MatchesWord(Word({"a", "b", "c"})));
  EXPECT_FALSE(nfa.MatchesWord(Word({"b", "a"})));
}

TEST(PatternNfaTest, DescendantSkipsElements) {
  PatternNfa nfa(P("//b"));
  EXPECT_TRUE(nfa.MatchesWord(Word({"b"})));
  EXPECT_TRUE(nfa.MatchesWord(Word({"a", "b"})));
  EXPECT_TRUE(nfa.MatchesWord(Word({"a", "x", "y", "b"})));
  EXPECT_FALSE(nfa.MatchesWord(Word({"a", "b", "c"})));
}

TEST(PatternNfaTest, WildcardMatchesAnyName) {
  PatternNfa nfa(P("/a/*/c"));
  EXPECT_TRUE(nfa.MatchesWord(Word({"a", "anything", "c"})));
  EXPECT_FALSE(nfa.MatchesWord(Word({"a", "c"})));
}

TEST(PatternNfaTest, AttributeStepsMatchOnlyAttributes) {
  PatternNfa nfa(P("/a/@id"));
  EXPECT_TRUE(nfa.MatchesWord(Word({"a", "@id"})));
  EXPECT_FALSE(nfa.MatchesWord(Word({"a", "id"})));
  // Descendant self-loops never consume attribute labels.
  PatternNfa desc(P("//@id"));
  EXPECT_TRUE(desc.MatchesWord(Word({"a", "b", "@id"})));
  EXPECT_FALSE(desc.MatchesWord(Word({"a", "@id", "b"})));
}

TEST(PatternNfaTest, UniversalPatterns) {
  PatternNfa elems(PathPattern::AllElements());
  EXPECT_TRUE(elems.MatchesWord(Word({"x"})));
  EXPECT_TRUE(elems.MatchesWord(Word({"a", "b", "c"})));
  EXPECT_FALSE(elems.MatchesWord(Word({"a", "@id"})));
  PatternNfa attrs(PathPattern::AllAttributes());
  EXPECT_TRUE(attrs.MatchesWord(Word({"a", "@id"})));
  EXPECT_FALSE(attrs.MatchesWord(Word({"a", "b"})));
}

// ----------------------------------------------- Parameterized containment.

// (general, specific, general_contains_specific, specific_contains_general)
using ContainmentCase = std::tuple<const char*, const char*, bool, bool>;

class ContainmentParamTest : public ::testing::TestWithParam<ContainmentCase> {
};

TEST_P(ContainmentParamTest, MatchesExpectation) {
  auto [general, specific, forward, backward] = GetParam();
  EXPECT_EQ(PatternContains(P(general), P(specific)), forward)
      << general << " ⊇ " << specific;
  EXPECT_EQ(PatternContains(P(specific), P(general)), backward)
      << specific << " ⊇ " << general;
}

INSTANTIATE_TEST_SUITE_P(
    Containment, ContainmentParamTest,
    ::testing::Values(
        // Identical patterns contain each other.
        ContainmentCase{"/a/b/c", "/a/b/c", true, true},
        // * generalizes a name at the same position.
        ContainmentCase{"/a/*/c", "/a/b/c", true, false},
        // Two wildcards.
        ContainmentCase{"/a/*/*", "/a/b/c", true, false},
        // // generalizes /.
        ContainmentCase{"//c", "/a/b/c", true, false},
        ContainmentCase{"//b/c", "/a/b/c", true, false},
        // //* contains every element path.
        ContainmentCase{"//*", "/a/b/c", true, false},
        ContainmentCase{"//*", "//item/price", true, false},
        // //@* contains attribute paths, not element paths.
        ContainmentCase{"//@*", "/a/@id", true, false},
        ContainmentCase{"//@*", "/a/b", false, false},
        // Same length, different name: incomparable.
        ContainmentCase{"/a/b/c", "/a/b/d", false, false},
        // Different lengths without //: incomparable.
        ContainmentCase{"/a/b", "/a/b/c", false, false},
        // The paper's generalization chain.
        ContainmentCase{"/regions/*/item/quantity",
                        "/regions/namerica/item/quantity", true, false},
        ContainmentCase{"/regions/*/item/*",
                        "/regions/*/item/quantity", true, false},
        ContainmentCase{"/regions/*/item/*",
                        "/regions/samerica/item/price", true, false},
        // // vs * interplay: //b ⊉ /a/*: wildcard may be a non-b name.
        ContainmentCase{"//b", "/a/*", false, false},
        ContainmentCase{"//*", "/a/*", true, false},
        // /a//c vs /a/b/c: the former skips arbitrarily.
        ContainmentCase{"/a//c", "/a/b/c", true, false},
        ContainmentCase{"/a//c", "/a/c", true, false},
        ContainmentCase{"/a//c", "/a/b/b/c", true, false},
        // //a//b contains /a/x/b and /a/b.
        ContainmentCase{"//a//b", "/a/x/b", true, false},
        ContainmentCase{"//a//b", "/a/b", true, false},
        ContainmentCase{"//a//b", "/b/a", false, false},
        // Equivalent spellings: /a//b vs /a//*/b? No: //b requires b;
        // //*/b requires at least one element between. Not equivalent.
        ContainmentCase{"/a//b", "/a//*/b", true, false},
        // Attribute flavor must match.
        ContainmentCase{"/a/*", "/a/@id", false, false},
        ContainmentCase{"/a/@*", "/a/@id", true, false},
        // Descendant attribute.
        ContainmentCase{"//item/@id", "/site/regions/africa/item/@id", true,
                        false}));

TEST(ContainmentTest, EquivalentDistinctSpellings) {
  // //a//* and //a/*? Not equivalent. But //*//* ≡ //*/* : both mean
  // "depth >= 2".
  EXPECT_TRUE(PatternsEquivalent(P("//*//*"), P("//*/*")));
  EXPECT_FALSE(PatternsEquivalent(P("//a//*"), P("//a/*")));
  EXPECT_TRUE(PatternContains(P("//a//*"), P("//a/*")));
}

// ---------------------------------------------------------- Intersection.

TEST(IntersectionTest, OverlappingPatterns) {
  EXPECT_TRUE(PatternsIntersect(P("/a/b"), P("/a/*")));
  EXPECT_TRUE(PatternsIntersect(P("//item"), P("/site/regions/*/item")));
  EXPECT_TRUE(PatternsIntersect(P("//*"), P("/x/y/z")));
}

TEST(IntersectionTest, DisjointPatterns) {
  EXPECT_FALSE(PatternsIntersect(P("/a/b"), P("/a/c")));
  EXPECT_FALSE(PatternsIntersect(P("/a"), P("/a/b")));
  EXPECT_FALSE(PatternsIntersect(P("//@id"), P("//id")));
}

TEST(IntersectionTest, IncomparableButOverlapping) {
  // /a/*/c and /a/b/* are incomparable yet share /a/b/c.
  EXPECT_FALSE(PatternContains(P("/a/*/c"), P("/a/b/*")));
  EXPECT_FALSE(PatternContains(P("/a/b/*"), P("/a/*/c")));
  EXPECT_TRUE(PatternsIntersect(P("/a/*/c"), P("/a/b/*")));
}

// ------------------------------------------------------- Cache behaviour.

TEST(ContainmentCacheTest, CachesAndStaysCorrect) {
  ContainmentCache cache;
  PathPattern g = P("/regions/*/item/*");
  PathPattern s = P("/regions/africa/item/quantity");
  EXPECT_TRUE(cache.Contains(g, s));
  EXPECT_TRUE(cache.Contains(g, s));  // Cached path.
  EXPECT_FALSE(cache.Contains(s, g));
  EXPECT_EQ(cache.size(), 2u);
}

// ----------------------------------------- Property sweep over a universe.

class ContainmentPropertyTest
    : public ::testing::TestWithParam<const char*> {};

const char* kUniverse[] = {
    "/a/b/c",  "/a/*/c",   "/a/b/*", "//c",     "//*",
    "/a//c",   "//b/c",    "/a/b",   "/a/@id",  "//@*",
    "//a//c",  "/a/*/*",   "//b//c", "/c",      "//a/*/c",
};

TEST_P(ContainmentPropertyTest, Reflexive) {
  PathPattern p = P(GetParam());
  EXPECT_TRUE(PatternContains(p, p));
  EXPECT_TRUE(PatternsIntersect(p, p));
}

TEST_P(ContainmentPropertyTest, UniversalContainsElementsPatterns) {
  PathPattern p = P(GetParam());
  bool is_attr = p.EndsWithAttribute();
  if (is_attr) {
    EXPECT_TRUE(PatternContains(PathPattern::AllAttributes(), p));
  } else {
    EXPECT_TRUE(PatternContains(PathPattern::AllElements(), p));
  }
}

TEST_P(ContainmentPropertyTest, ContainmentImpliesIntersection) {
  PathPattern p = P(GetParam());
  for (const char* other_text : kUniverse) {
    PathPattern other = P(other_text);
    if (PatternContains(p, other)) {
      EXPECT_TRUE(PatternsIntersect(p, other))
          << p.ToString() << " contains " << other.ToString();
    }
  }
}

TEST_P(ContainmentPropertyTest, Transitive) {
  PathPattern a = P(GetParam());
  for (const char* b_text : kUniverse) {
    PathPattern b = P(b_text);
    if (!PatternContains(a, b)) continue;
    for (const char* c_text : kUniverse) {
      PathPattern c = P(c_text);
      if (PatternContains(b, c)) {
        EXPECT_TRUE(PatternContains(a, c))
            << a.ToString() << " ⊇ " << b.ToString() << " ⊇ "
            << c.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Universe, ContainmentPropertyTest,
                         ::testing::ValuesIn(kUniverse));

}  // namespace
}  // namespace xia
