// xia::wlm — workload capture, template compression, and drift-triggered
// re-advising. Covers the ring-log semantics, the capture hooks on the
// executor and what-if paths, content-deterministic compression (threads
// 1 vs 4, and under an injected capture failpoint), capture-log IO, the
// drift monitor, and the headline acceptance property: a 10×-duplicated
// workload advised through capture + compression yields the same
// recommendation as the equivalent hand-built weighted workload with ≥5×
// fewer what-if cost requests.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/whatif.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "wlm/capture.h"
#include "wlm/compress.h"
#include "wlm/drift.h"
#include "wlm/fingerprint.h"
#include "wlm/wlm_io.h"
#include "xmldata/xmark_gen.h"

namespace xia {
namespace wlm {
namespace {

Query Parse(const std::string& text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(*q);
}

CaptureRecord Rec(const std::string& text, double cost) {
  CaptureRecord r;
  r.text = text;
  r.est_cost = cost;
  r.fingerprint = TemplateFingerprint(Parse(text));
  return r;
}

/// RAII capture arming: the library's ScopedCaptureLog (wlm/capture.h),
/// which disarms on scope exit even when an assertion fails mid-test.
using ScopedCapture = ScopedCaptureLog;

/// Everything that must be bit-identical between two equivalent advising
/// runs, rendered with round-trip float precision.
std::string RecommendationSignature(const Recommendation& rec) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%.17g|%.17g|%.17g\n",
                rec.baseline_cost, rec.recommended_cost, rec.update_cost,
                rec.benefit, rec.total_size_bytes);
  std::string out = buf;
  for (const IndexDefinition& def : rec.indexes) {
    out += def.pattern.ToString() + " " + ValueTypeName(def.type) + "\n";
  }
  return out;
}

uint64_t CostRequests(const Recommendation& rec) {
  const CostCacheStats& c = rec.search.counters.cost;
  return c.hits + c.misses + c.bypasses;
}

// ------------------------------------------------------- Fingerprinting.

TEST(TemplateFingerprintTest, LiteralsDoNotSplitTemplates) {
  std::string fp_a = TemplateFingerprint(Parse(
      "for $i in doc(\"c\")/site/item where $i/price < 100 return $i"));
  std::string fp_b = TemplateFingerprint(Parse(
      "for $i in doc(\"c\")/site/item where $i/price < 7 return $i"));
  EXPECT_EQ(fp_a, fp_b);
  // Literal spelling and whitespace do not matter either: the fingerprint
  // comes from the parsed normal form.
  std::string fp_c = TemplateFingerprint(Parse(
      "for  $i in doc(\"c\")/site/item  where $i/price < 7.0 return $i"));
  EXPECT_EQ(fp_a, fp_c);
}

TEST(TemplateFingerprintTest, StructureDoesSplitTemplates) {
  std::string base = TemplateFingerprint(Parse(
      "for $i in doc(\"c\")/site/item where $i/price < 100 return $i"));
  // Different comparison operator.
  EXPECT_NE(base, TemplateFingerprint(Parse(
                      "for $i in doc(\"c\")/site/item where $i/price > 100 "
                      "return $i")));
  // Different predicate pattern.
  EXPECT_NE(base, TemplateFingerprint(Parse(
                      "for $i in doc(\"c\")/site/item where $i/cost < 100 "
                      "return $i")));
  // Different collection.
  EXPECT_NE(base, TemplateFingerprint(Parse(
                      "for $i in doc(\"d\")/site/item where $i/price < 100 "
                      "return $i")));
}

// ------------------------------------------------------------- Ring log.

TEST(QueryLogTest, AppendSnapshotAndStats) {
  QueryLog log(64);
  // Registry totals aggregate attached instances; read them via snapshot.
  uint64_t before =
      obs::Registry().TakeSnapshot().counter("wlm.captured");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        log.Append(Rec("for $i in doc(\"c\")/a/b where $i/v > " +
                           std::to_string(i) + " return $i",
                       1.0 + i))
            .ok());
  }
  std::vector<CaptureRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 5u);
  // Snapshot is seq-sorted: serial capture order is reproduced exactly.
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].seq, snap[i].seq);
  }
  QueryLogStats stats = log.stats();
  EXPECT_EQ(stats.captured, 5u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.size, 5u);
  EXPECT_GE(stats.capacity, 64u);
  EXPECT_EQ(
      obs::Registry().TakeSnapshot().counter("wlm.captured") - before, 5u);
  EXPECT_NE(stats.ToString().find("captured 5"), std::string::npos);

  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  // Lifetime counts survive Clear.
  EXPECT_EQ(log.stats().captured, 5u);
}

TEST(QueryLogTest, RingOverwritesOldestAndCountsDrops) {
  // Serial appends land on ONE shard (per-thread stripe), so the
  // effective serial capacity is capacity / kShards = 2 records.
  QueryLog log(2 * QueryLog::kShards);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.Append(Rec("for $i in doc(\"c\")/a/b where $i/v > " +
                                   std::to_string(i) + " return $i",
                               1.0))
                    .ok());
  }
  std::vector<CaptureRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // The survivors are the newest records.
  EXPECT_EQ(snap[0].seq + 1, snap[1].seq);
  EXPECT_EQ(snap[1].seq, 4u);
  QueryLogStats stats = log.stats();
  EXPECT_EQ(stats.captured, 5u);
  EXPECT_EQ(stats.dropped, 3u);
}

TEST(QueryLogTest, AppendFailpointDropsTheMatchedRecord) {
  QueryLog log(64);
  uint64_t before = obs::Registry().TakeSnapshot().counter("wlm.dropped");
  fp::FailSpec spec;
  spec.code = StatusCode::kInternal;
  spec.match_arg = 2;  // Fail exactly the third captured query.
  fp::ScopedFailpoint guard("wlm.capture.append", spec);
  int failures = 0;
  for (int i = 0; i < 5; ++i) {
    Status s = log.Append(Rec("for $i in doc(\"c\")/a/b where $i/v > " +
                                  std::to_string(i) + " return $i",
                              1.0));
    if (!s.ok()) ++failures;
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(log.Snapshot().size(), 4u);
  EXPECT_EQ(log.stats().dropped, 1u);
  EXPECT_EQ(
      obs::Registry().TakeSnapshot().counter("wlm.dropped") - before, 1u);
}

// -------------------------------------------------------- Capture hooks.

class CaptureHookTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&db_, "xmark", 4, params, 42).ok());
  }

  Database db_;
  Catalog catalog_;
  CostModel cost_model_;
  ContainmentCache cache_;
};

TEST_F(CaptureHookTest, ExecutorCapturesTextFingerprintAndCost) {
  const std::string text =
      "for $i in doc(\"xmark\")/site/regions/africa/item "
      "where $i/quantity > 5 return $i/name";
  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> plan = opt.Optimize(Parse(text), catalog_, &cache_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->query_text, text);

  QueryLog log(64);
  Executor executor(&db_, &catalog_, cost_model_);
  {
    ScopedCapture armed(&log);
    ASSERT_TRUE(executor.Execute(*plan).ok());
  }
  std::vector<CaptureRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].text, text);
  EXPECT_EQ(snap[0].fingerprint, TemplateFingerprint(Parse(text)));
  EXPECT_DOUBLE_EQ(snap[0].est_cost, plan->total_cost);

  // Disarmed: the same execution captures nothing.
  ASSERT_TRUE(executor.Execute(*plan).ok());
  EXPECT_EQ(log.Snapshot().size(), 1u);
}

TEST_F(CaptureHookTest, WhatIfPathCapturesIncludingCacheHits) {
  const std::string text =
      "for $i in doc(\"xmark\")/site/regions/africa/item "
      "where $i/quantity > 5 return $i/name";
  WhatIfSession session(&db_, catalog_, cost_model_, /*threads=*/1,
                        /*use_cost_cache=*/true);
  QueryLog log(64);
  ScopedCapture armed(&log);
  ASSERT_TRUE(session.ExplainQuery(Parse(text)).ok());
  // Second EXPLAIN hits the cost cache — the capture hook must still see
  // it: repeated executions are exactly what frequency weights measure.
  ASSERT_TRUE(session.ExplainQuery(Parse(text)).ok());
  std::vector<CaptureRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].text, text);
  EXPECT_EQ(snap[0].fingerprint, snap[1].fingerprint);
  EXPECT_DOUBLE_EQ(snap[0].est_cost, snap[1].est_cost);
}

TEST_F(CaptureHookTest, CaptureFailureNeverFailsTheQuery) {
  QueryLog log(64);
  ScopedCapture armed(&log);
  fp::FailSpec spec;
  spec.code = StatusCode::kInternal;
  fp::ScopedFailpoint guard("wlm.capture.append", spec);
  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> plan = opt.Optimize(
      Parse("for $i in doc(\"xmark\")/site/regions/africa/item "
            "where $i/quantity > 5 return $i/name"),
      catalog_, &cache_);
  ASSERT_TRUE(plan.ok());
  Executor executor(&db_, &catalog_, cost_model_);
  // Every capture append trips, yet the query succeeds.
  ASSERT_TRUE(executor.Execute(*plan).ok());
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.stats().dropped, 1u);
}

TEST(ScopedCaptureLogTest, RestoresPreviousSinkAndNests) {
  ASSERT_EQ(CaptureLog(), nullptr);
  QueryLog outer_log(8);
  QueryLog inner_log(8);
  {
    ScopedCaptureLog outer(&outer_log);
    EXPECT_EQ(CaptureLog(), &outer_log);
    {
      // Nested guards compose: the inner one restores the OUTER log, not
      // a blanket nullptr — which is what lets a scope temporarily swap
      // sinks without knowing whether capture was already armed.
      ScopedCaptureLog inner(&inner_log);
      EXPECT_EQ(CaptureLog(), &inner_log);
    }
    EXPECT_EQ(CaptureLog(), &outer_log);
    {
      // nullptr = scoped disarm.
      ScopedCaptureLog disarm(nullptr);
      EXPECT_FALSE(CaptureEnabled());
    }
    EXPECT_EQ(CaptureLog(), &outer_log);
  }
  EXPECT_EQ(CaptureLog(), nullptr);
}

TEST(ScopedCaptureLogTest, DisarmsOnException) {
  // The leak this guard exists to prevent: a scope owns a log, arms it,
  // then throws — unwinding must restore the sink BEFORE the owner (and
  // the log with it) is destroyed, or the next capture hook fires into
  // freed memory.
  ASSERT_EQ(CaptureLog(), nullptr);
  EXPECT_THROW(
      {
        QueryLog log(8);
        ScopedCaptureLog armed(&log);  // After the log: guard dies first.
        EXPECT_EQ(CaptureLog(), &log);
        throw std::runtime_error("mid-capture failure");
      },
      std::runtime_error);
  EXPECT_EQ(CaptureLog(), nullptr);
  // Safe to capture again through a fresh sink.
  QueryLog fresh(8);
  ScopedCaptureLog armed(&fresh);
  EXPECT_TRUE(CaptureEnabled());
}

// ----------------------------------------------------------- Compression.

std::vector<CaptureRecord> MixedLog() {
  std::vector<CaptureRecord> records;
  // Template A: 3 executions at cost 2 (weight 6).
  for (int i = 0; i < 3; ++i) {
    records.push_back(
        Rec("for $i in doc(\"c\")/site/item where $i/price < " +
                std::to_string(10 * (i + 1)) + " return $i",
            2.0));
  }
  // Template B: 1 execution at cost 10 (weight 10) — expensive and rare.
  records.push_back(
      Rec("for $i in doc(\"c\")/site/item where $i/quantity > 5 "
          "order by $i/price return $i/name",
          10.0));
  // Template C: 2 executions at cost 0.5 (weight 1).
  for (int i = 0; i < 2; ++i) {
    records.push_back(
        Rec("for $i in doc(\"c\")/site/open_auction return $i", 0.5));
  }
  return records;
}

TEST(CompressTest, ClustersByTemplateAndWeightsByTotalCost) {
  Result<CompressedWorkload> out = CompressLog(MixedLog());
  ASSERT_TRUE(out.ok());
  const CompressionReport& report = out->report;
  EXPECT_EQ(report.input_records, 6u);
  EXPECT_EQ(report.templates_total, 3u);
  EXPECT_EQ(report.templates_kept, 3u);
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
  // Weight order: B (10) > A (6) > C (1).
  ASSERT_EQ(report.clusters.size(), 3u);
  EXPECT_DOUBLE_EQ(report.clusters[0].weight, 10.0);
  EXPECT_EQ(report.clusters[0].frequency, 1u);
  EXPECT_DOUBLE_EQ(report.clusters[1].weight, 6.0);
  EXPECT_EQ(report.clusters[1].frequency, 3u);
  EXPECT_DOUBLE_EQ(report.clusters[1].mean_cost, 2.0);
  // The representative is the lexicographically smallest member text.
  EXPECT_EQ(report.clusters[1].representative_text,
            "for $i in doc(\"c\")/site/item where $i/price < 10 return $i");
  // The workload mirrors the kept clusters: ids T1.., cluster weights.
  ASSERT_EQ(out->workload.size(), 3u);
  EXPECT_EQ(out->workload.queries()[0].id, "T1");
  EXPECT_DOUBLE_EQ(out->workload.queries()[0].weight, 10.0);
  EXPECT_DOUBLE_EQ(out->workload.TotalQueryWeight(), 17.0);
}

TEST(CompressTest, TopKCapAndCoverageFloorReportDrops) {
  CompressionOptions options;
  options.max_templates = 1;
  Result<CompressedWorkload> out = CompressLog(MixedLog(), options);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->report.templates_kept, 1u);
  EXPECT_EQ(out->workload.size(), 1u);
  EXPECT_NEAR(out->report.coverage, 10.0 / 17.0, 1e-12);
  // Dropped clusters are reported, kept-first.
  EXPECT_TRUE(out->report.clusters[0].kept);
  EXPECT_FALSE(out->report.clusters[1].kept);
  EXPECT_FALSE(out->report.clusters[2].kept);
  EXPECT_NE(out->report.ToString().find("dropped"), std::string::npos);

  // A coverage floor overrides the cap: 0.9 needs B and A (16/17).
  options.min_coverage = 0.9;
  out = CompressLog(MixedLog(), options);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->report.templates_kept, 2u);
  EXPECT_NEAR(out->report.coverage, 16.0 / 17.0, 1e-12);

  options.min_coverage = 1.5;
  EXPECT_FALSE(CompressLog(MixedLog(), options).ok());
}

TEST(CompressTest, ZeroCostClustersFallBackToFrequencyWeight) {
  std::vector<CaptureRecord> records;
  records.push_back(Rec("for $i in doc(\"c\")/a/b return $i", 0.0));
  records.push_back(Rec("for $i in doc(\"c\")/a/b return $i", 0.0));
  Result<CompressedWorkload> out = CompressLog(records);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->workload.size(), 1u);
  EXPECT_DOUBLE_EQ(out->workload.queries()[0].weight, 2.0);
}

TEST(CompressTest, WorkloadFromLogKeepsEveryRecordAtWeightOne) {
  Result<Workload> raw = WorkloadFromLog(MixedLog());
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 6u);
  EXPECT_EQ(raw->queries()[0].id, "R1");
  EXPECT_DOUBLE_EQ(raw->TotalQueryWeight(), 6.0);
}

// Same log contents → byte-identical compressed workload, no matter how
// capture threads interleaved the appends.
TEST(CompressTest, DeterministicAcrossCaptureThreadCounts) {
  std::vector<CaptureRecord> base = MixedLog();
  auto compress_with_threads = [&](int threads) -> std::string {
    QueryLog log(1024);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        // Interleave: each thread appends a strided slice.
        for (size_t i = static_cast<size_t>(t); i < base.size();
             i += static_cast<size_t>(threads)) {
          CaptureRecord r = base[i];
          EXPECT_TRUE(log.Append(std::move(r)).ok());
        }
      });
    }
    for (std::thread& w : workers) w.join();
    Result<CompressedWorkload> out = CompressLog(log.Snapshot());
    EXPECT_TRUE(out.ok());
    if (!out.ok()) return "";
    return out->report.ToString() + "===\n" + out->workload.Describe();
  };
  std::string serial = compress_with_threads(1);
  std::string parallel = compress_with_threads(4);
  EXPECT_EQ(serial, parallel);
}

// An injected capture failure drops a deterministic record (failpoints
// match on the sequence argument), so compression stays reproducible
// under failure injection too.
TEST(CompressTest, DeterministicUnderInjectedCaptureFailure) {
  std::vector<CaptureRecord> base = MixedLog();
  auto run = [&]() -> std::string {
    QueryLog log(1024);
    fp::FailSpec spec;
    spec.code = StatusCode::kInternal;
    spec.match_arg = 1;  // Drop the second capture, every run.
    fp::ScopedFailpoint guard("wlm.capture.append", spec);
    for (const CaptureRecord& r : base) {
      CaptureRecord copy = r;
      (void)log.Append(std::move(copy));
    }
    EXPECT_EQ(log.Snapshot().size(), base.size() - 1);
    Result<CompressedWorkload> out = CompressLog(log.Snapshot());
    EXPECT_TRUE(out.ok());
    if (!out.ok()) return "";
    return out->report.ToString() + "===\n" + out->workload.Describe();
  };
  EXPECT_EQ(run(), run());
}

// ----------------------------------------------------------- Capture IO.

class WlmIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("wlm_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

TEST_F(WlmIoTest, SaveLoadRoundTripsRecordsAndRecomputesFingerprints) {
  std::vector<CaptureRecord> records = MixedLog();
  for (size_t i = 0; i < records.size(); ++i) {
    records[i].seq = i;
    records[i].timestamp_micros = 1700000000000000 + static_cast<int64_t>(i);
  }
  records[0].est_cost = 1.0 / 3.0;  // Needs round-trip float precision.
  std::string path = (dir_ / "log.wlm").string();
  ASSERT_TRUE(SaveCaptureLogFile(records, path).ok());
  Result<std::vector<CaptureRecord>> loaded = LoadCaptureLogFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*loaded)[i].seq, records[i].seq);
    EXPECT_EQ((*loaded)[i].timestamp_micros, records[i].timestamp_micros);
    EXPECT_DOUBLE_EQ((*loaded)[i].est_cost, records[i].est_cost);
    EXPECT_EQ((*loaded)[i].text, records[i].text);
    // Fingerprints come from re-parsing, never from the file — and they
    // must agree with what capture computed.
    EXPECT_EQ((*loaded)[i].fingerprint, records[i].fingerprint);
  }
}

TEST_F(WlmIoTest, TornWriteLeavesNoFinalFile) {
  std::string path = (dir_ / "torn.wlm").string();
  fp::FailSpec spec;
  spec.code = StatusCode::kInternal;
  fp::ScopedFailpoint guard("wlm.log_io.write", spec);
  EXPECT_FALSE(SaveCaptureLogFile(MixedLog(), path).ok());
  // Write-temp-then-rename: neither the final file nor the temp survives.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(WlmIoTest, ParseRejectsGarbageWithLineNumbers) {
  EXPECT_FALSE(ParseCaptureLog("bogus 1 2 3 query").ok());
  EXPECT_FALSE(ParseCaptureLog("rec nonsense 2 3 query").ok());
  EXPECT_FALSE(ParseCaptureLog("rec 1 2 3").ok());  // Missing text.
  // Unparseable query text is rejected (fingerprints are recomputed).
  EXPECT_FALSE(ParseCaptureLog("rec 1 2 3 not a query").ok());
  // Comments and blank lines are fine.
  Result<std::vector<CaptureRecord>> ok = ParseCaptureLog(
      "# header\n\nrec 1 2 3 for $i in doc(\"c\")/a/b return $i\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 1u);
  Status bad = ParseCaptureLog("rec 1 2\n").status();
  EXPECT_NE(bad.message().find("line 1"), std::string::npos);
}

// ------------------------------------ Compressed advising (acceptance).

class WlmAdvisingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&db_, "xmark", 6, params, 42).ok());
  }

  AdvisorOptions Options(int threads) {
    AdvisorOptions options;
    options.space_budget_bytes = 512.0 * 1024;
    options.threads = threads;
    return options;
  }

  Database db_;
  Catalog catalog_;
  CostModel cost_model_;
};

// The headline property: a 10×-duplicated stream advised via capture +
// compression equals advising the hand-built deduplicated weighted
// workload bit-for-bit, at ≥5× fewer what-if cost requests than advising
// the raw log.
TEST_F(WlmAdvisingTest, CompressedAdvisingMatchesHandWeightedWorkload) {
  const std::vector<std::string> templates = {
      "for $i in doc(\"xmark\")/site/regions/africa/item "
      "where $i/quantity > 5 return $i/name",
      "for $i in doc(\"xmark\")/site/regions/asia/item "
      "where $i/price < 50 return $i/name",
      "for $o in doc(\"xmark\")/site/open_auctions/open_auction "
      "where $o/current > 100 return $o",
  };

  // Capture each query 10× through the what-if path.
  QueryLog log(4096);
  uint64_t captured_before =
      obs::Registry().TakeSnapshot().counter("wlm.captured");
  {
    ScopedCapture armed(&log);
    WhatIfSession session(&db_, catalog_, cost_model_, /*threads=*/1,
                          /*use_cost_cache=*/true);
    for (int round = 0; round < 10; ++round) {
      for (const std::string& text : templates) {
        ASSERT_TRUE(session.ExplainQuery(Parse(text)).ok());
      }
    }
  }
  EXPECT_EQ(obs::Registry().TakeSnapshot().counter("wlm.captured") -
                captured_before,
            30u);
  std::vector<CaptureRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 30u);

  // Compress: 3 templates, frequency 10 each.
  Result<CompressedWorkload> compressed = CompressLog(records);
  ASSERT_TRUE(compressed.ok());
  ASSERT_EQ(compressed->workload.size(), 3u);
  for (const TemplateCluster& c : compressed->report.clusters) {
    EXPECT_EQ(c.frequency, 10u);
    EXPECT_DOUBLE_EQ(c.weight, 10.0 * c.mean_cost);
  }

  // Hand-build the equivalent deduplicated weighted workload.
  Workload hand_built;
  size_t n = 0;
  for (const TemplateCluster& c : compressed->report.clusters) {
    ASSERT_TRUE(hand_built
                    .AddQueryText(c.representative_text, c.weight,
                                  "T" + std::to_string(++n))
                    .ok());
  }

  Result<Recommendation> from_compressed =
      Advisor(&db_, &catalog_, Options(1)).Recommend(compressed->workload);
  Result<Recommendation> from_hand_built =
      Advisor(&db_, &catalog_, Options(1)).Recommend(hand_built);
  ASSERT_TRUE(from_compressed.ok());
  ASSERT_TRUE(from_hand_built.ok());
  EXPECT_FALSE(from_compressed->indexes.empty());
  EXPECT_EQ(RecommendationSignature(*from_compressed),
            RecommendationSignature(*from_hand_built));

  // ... and at any thread count (tentpole determinism requirement).
  Result<Recommendation> compressed_mt =
      Advisor(&db_, &catalog_, Options(4)).Recommend(compressed->workload);
  ASSERT_TRUE(compressed_mt.ok());
  EXPECT_EQ(RecommendationSignature(*from_compressed),
            RecommendationSignature(*compressed_mt));

  // Efficiency: advising the raw 30-query log issues 10× the what-if
  // cost requests of the compressed 3-query workload (≥5× required).
  Result<Workload> raw = WorkloadFromLog(records);
  ASSERT_TRUE(raw.ok());
  Result<Recommendation> from_raw =
      Advisor(&db_, &catalog_, Options(1)).Recommend(*raw);
  ASSERT_TRUE(from_raw.ok());
  uint64_t raw_requests = CostRequests(*from_raw);
  uint64_t compressed_requests = CostRequests(*from_compressed);
  ASSERT_GT(compressed_requests, 0u);
  EXPECT_GE(raw_requests, 5 * compressed_requests);
  // The raw run still lands on the same physical design.
  EXPECT_FALSE(from_raw->indexes.empty());
}

// ------------------------------------------------------ Drift monitor.

TEST_F(WlmAdvisingTest, DriftMonitorTriggersOnFirstWindowThenSettles) {
  Workload workload;
  ASSERT_TRUE(workload
                  .AddQueryText(
                      "for $i in doc(\"xmark\")/site/regions/africa/item "
                      "where $i/quantity > 5 return $i/name",
                      10.0, "T1")
                  .ok());

  DriftMonitor monitor(&db_, cost_model_);
  EXPECT_FALSE(monitor.has_prediction());

  // First window: no recorded prediction — stale by definition, and
  // MaybeReadvise produces a recommendation.
  Result<ReadviseOutcome> first =
      monitor.MaybeReadvise(workload, catalog_, Options(1));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->drift.exceeded);
  ASSERT_TRUE(first->recommendation.has_value());
  EXPECT_TRUE(monitor.has_prediction());

  // Materialize nothing (catalog unchanged): the captured workload still
  // runs at baseline cost while the recommendation promised better, so
  // drift stays above any reasonable threshold and re-advising fires
  // again — the monitor is honest about unapplied recommendations.
  Result<DriftReport> stale = monitor.Check(workload, catalog_);
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale->has_prediction);
  EXPECT_GT(stale->drift, 0.0);

  // Record the honest baseline (as if the DBA rejected the advice and we
  // re-promised current cost): the same workload now shows zero drift.
  Result<double> current = monitor.CurrentCost(workload, catalog_);
  ASSERT_TRUE(current.ok());
  monitor.RecordPrediction(*current, workload.TotalQueryWeight());
  Result<DriftReport> fresh = monitor.Check(workload, catalog_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NEAR(fresh->drift, 0.0, 1e-9);
  EXPECT_FALSE(fresh->exceeded);
  Result<ReadviseOutcome> settled =
      monitor.MaybeReadvise(workload, catalog_, Options(1));
  ASSERT_TRUE(settled.ok());
  EXPECT_FALSE(settled->recommendation.has_value());

  // Weight scaling: the same workload at double weight predicts double
  // cost, so drift stays zero (per-weight normalization).
  Workload doubled;
  ASSERT_TRUE(doubled
                  .AddQueryText(workload.queries()[0].text, 20.0, "T1")
                  .ok());
  Result<DriftReport> scaled = monitor.Check(doubled, catalog_);
  ASSERT_TRUE(scaled.ok());
  EXPECT_NEAR(scaled->drift, 0.0, 1e-9);
}

TEST_F(WlmAdvisingTest, DriftTripsWhenTheStreamShiftsToExpensiveQueries) {
  // A second, tiny collection: queries against it are far cheaper per
  // unit weight than xmark scans.
  ASSERT_TRUE(db_.CreateCollection("tiny").ok());
  ASSERT_TRUE(db_.LoadXml("tiny", "<r><v>1</v><v>2</v></r>").ok());
  ASSERT_TRUE(db_.Analyze("tiny").ok());

  Workload cheap;
  ASSERT_TRUE(
      cheap.AddQueryText("for $v in doc(\"tiny\")/r/v return $v", 10.0, "T1")
          .ok());
  DriftMonitor monitor(&db_, cost_model_);
  Result<double> cheap_cost = monitor.CurrentCost(cheap, catalog_);
  ASSERT_TRUE(cheap_cost.ok());
  monitor.RecordPrediction(*cheap_cost, cheap.TotalQueryWeight());

  // Same weight, but the stream moved to xmark scans: per-weight cost
  // explodes past the promise and the threshold trips.
  Workload shifted;
  ASSERT_TRUE(shifted
                  .AddQueryText(
                      "for $o in doc(\"xmark\")/site/open_auctions/"
                      "open_auction where $o/current > 100 return $o",
                      10.0, "T1")
                  .ok());
  Result<DriftReport> drifted = monitor.Check(shifted, catalog_);
  ASSERT_TRUE(drifted.ok());
  EXPECT_TRUE(drifted->exceeded) << drifted->ToString();
  EXPECT_GT(drifted->drift, DriftOptions().threshold);

  // And MaybeReadvise acts on it: a recommendation comes back and its
  // promise replaces the stale one.
  Result<ReadviseOutcome> outcome =
      monitor.MaybeReadvise(shifted, catalog_, Options(1));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->drift.exceeded);
  ASSERT_TRUE(outcome->recommendation.has_value());
  Result<DriftReport> after = monitor.Check(shifted, catalog_);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->drift, drifted->drift);
}

TEST_F(WlmAdvisingTest, DegradedOnlyPromiseIsTaggedAndHalvesThreshold) {
  Workload workload;
  ASSERT_TRUE(workload
                  .AddQueryText(
                      "for $i in doc(\"xmark\")/site/regions/africa/item "
                      "where $i/quantity > 5 return $i/name",
                      10.0, "T1")
                  .ok());
  DriftMonitor monitor(&db_, cost_model_);
  Result<double> current = monitor.CurrentCost(workload, catalog_);
  ASSERT_TRUE(current.ok());

  // A promise 15% under the running cost: between threshold/2 (10%) and
  // the full threshold (20%), so the verdict depends purely on the
  // degraded tag.
  monitor.RecordPrediction(*current / 1.15, workload.TotalQueryWeight(),
                           /*degraded=*/true);
  EXPECT_TRUE(monitor.prediction_degraded());
  Result<DriftReport> degraded = monitor.Check(workload, catalog_);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded_promise);
  EXPECT_TRUE(degraded->exceeded) << degraded->ToString();
  EXPECT_NE(degraded->ToString().find("[degraded promise]"),
            std::string::npos);

  // The identical promise from a converged advise sits below the full
  // threshold: fresh. This is the down-weighting, isolated.
  monitor.RecordPrediction(*current / 1.15, workload.TotalQueryWeight(),
                           /*degraded=*/false);
  EXPECT_FALSE(monitor.prediction_degraded());
  Result<DriftReport> converged = monitor.Check(workload, catalog_);
  ASSERT_TRUE(converged.ok());
  EXPECT_FALSE(converged->degraded_promise);
  EXPECT_FALSE(converged->exceeded) << converged->ToString();
  EXPECT_NEAR(converged->drift, degraded->drift, 1e-9);
}

TEST_F(WlmAdvisingTest, DegradedPromiseNeverOverwritesConvergedBaseline) {
  Workload workload;
  ASSERT_TRUE(workload
                  .AddQueryText(
                      "for $i in doc(\"xmark\")/site/regions/africa/item "
                      "where $i/quantity > 5 return $i/name",
                      10.0, "T1")
                  .ok());
  DriftMonitor monitor(&db_, cost_model_);
  Result<double> current = monitor.CurrentCost(workload, catalog_);
  ASSERT_TRUE(current.ok());
  monitor.RecordPrediction(*current, workload.TotalQueryWeight());

  // The pre-fix bug: a budget-truncated advise re-recording its inflated
  // promise would lower the drift bar. The degraded record must bounce
  // off the converged baseline.
  monitor.RecordPrediction(*current * 2.0, workload.TotalQueryWeight(),
                           /*degraded=*/true);
  EXPECT_FALSE(monitor.prediction_degraded());
  Result<DriftReport> report = monitor.Check(workload, catalog_);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->predicted_cost, *current, 1e-9);
  EXPECT_FALSE(report->degraded_promise);

  // A converged re-advise still updates the baseline normally.
  monitor.RecordPrediction(*current * 2.0, workload.TotalQueryWeight());
  Result<DriftReport> updated = monitor.Check(workload, catalog_);
  ASSERT_TRUE(updated.ok());
  EXPECT_NEAR(updated->predicted_cost, *current * 2.0, 1e-9);
}

TEST_F(WlmAdvisingTest, MaybeReadviseTagsTruncatedRecommendations) {
  ASSERT_TRUE(db_.CreateCollection("tiny").ok());
  ASSERT_TRUE(db_.LoadXml("tiny", "<r><v>1</v><v>2</v></r>").ok());
  ASSERT_TRUE(db_.Analyze("tiny").ok());
  Workload cheap;
  ASSERT_TRUE(
      cheap.AddQueryText("for $v in doc(\"tiny\")/r/v return $v", 10.0, "T1")
          .ok());
  DriftMonitor monitor(&db_, cost_model_);

  // First window advised under a pre-fired cancel token: the anytime
  // search returns a valid best-so-far recommendation with stop_reason
  // kCancelled, and the monitor must tag its promise as degraded.
  AdvisorOptions cancelled_options = Options(1);
  cancelled_options.cancel = CancelToken::Cancellable();
  cancelled_options.cancel.Cancel();
  Result<ReadviseOutcome> truncated =
      monitor.MaybeReadvise(cheap, catalog_, cancelled_options);
  ASSERT_TRUE(truncated.ok());
  ASSERT_TRUE(truncated->recommendation.has_value());
  EXPECT_NE(truncated->recommendation->stop_reason, StopReason::kConverged);
  EXPECT_TRUE(monitor.has_prediction());
  EXPECT_TRUE(monitor.prediction_degraded());

  // The stream shifts to expensive xmark scans, drift trips (the report
  // carries the degraded tag), and the converged re-advise replaces the
  // degraded promise.
  Workload shifted;
  ASSERT_TRUE(shifted
                  .AddQueryText(
                      "for $o in doc(\"xmark\")/site/open_auctions/"
                      "open_auction where $o/current > 100 return $o",
                      10.0, "T1")
                  .ok());
  Result<ReadviseOutcome> converged =
      monitor.MaybeReadvise(shifted, catalog_, Options(1));
  ASSERT_TRUE(converged.ok());
  EXPECT_TRUE(converged->drift.exceeded);
  EXPECT_TRUE(converged->drift.degraded_promise);
  ASSERT_TRUE(converged->recommendation.has_value());
  EXPECT_EQ(converged->recommendation->stop_reason, StopReason::kConverged);
  EXPECT_FALSE(monitor.prediction_degraded());
}

TEST_F(WlmAdvisingTest, DriftMonitorSkipsEmptyCaptureWindows) {
  DriftMonitor monitor(&db_, cost_model_);
  Workload empty;
  Result<ReadviseOutcome> outcome =
      monitor.MaybeReadvise(empty, catalog_, Options(1));
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->drift.exceeded);
  EXPECT_FALSE(outcome->recommendation.has_value());
  EXPECT_FALSE(monitor.has_prediction());
}

}  // namespace
}  // namespace wlm
}  // namespace xia
