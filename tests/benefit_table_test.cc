// CoPhy-style atomic-benefit decomposition (advisor/benefit_table.h).
// Covers the bounded subset enumeration and DAG pair pruning, the table's
// insert/lookup/compose mechanics, pricing determinism at any thread
// count, exactness of table hits, the conservative composed bound, the
// compose-off mode's bit-identity with exact search, fallback accounting,
// anytime (deadline/cancel) partial tables, and the headline acceptance
// property: decomposed advising issues several times fewer what-if
// optimizer calls than exact advising while promising benefit within
// DecomposeOptions::epsilon of it (the ≥10× floor at 10k templates is
// enforced by the bench regression gate).

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/benefit_table.h"
#include "advisor/enumeration.h"
#include "advisor/generalize.h"
#include "advisor/search_greedy.h"
#include "advisor/search_greedy_heuristic.h"
#include "advisor/search_topdown.h"
#include "common/random.h"
#include "workload/variation.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"

namespace xia {
namespace {

// ------------------------------------------------ Subset enumeration.

TEST(EnumerateBenefitSubsetsTest, DegreeOneIsEmptySetPlusSingletons) {
  bool capped = true;
  std::vector<std::vector<int>> subsets =
      EnumerateBenefitSubsets({2, 5, 9}, /*max_degree=*/1,
                              /*max_subsets=*/128, nullptr, &capped);
  EXPECT_FALSE(capped);
  ASSERT_EQ(subsets.size(), 4u);
  EXPECT_TRUE(subsets[0].empty());
  EXPECT_EQ(subsets[1], std::vector<int>({2}));
  EXPECT_EQ(subsets[2], std::vector<int>({5}));
  EXPECT_EQ(subsets[3], std::vector<int>({9}));
}

TEST(EnumerateBenefitSubsetsTest, DegreeTwoAddsPairsInLexicographicOrder) {
  bool capped = true;
  std::vector<std::vector<int>> subsets =
      EnumerateBenefitSubsets({2, 5, 9}, /*max_degree=*/2,
                              /*max_subsets=*/128, nullptr, &capped);
  EXPECT_FALSE(capped);
  ASSERT_EQ(subsets.size(), 7u);
  EXPECT_EQ(subsets[4], std::vector<int>({2, 5}));
  EXPECT_EQ(subsets[5], std::vector<int>({2, 9}));
  EXPECT_EQ(subsets[6], std::vector<int>({5, 9}));
}

TEST(EnumerateBenefitSubsetsTest, AncestorPruningDropsComparablePairs) {
  // Candidate 0 strictly generalizes candidate 1; 2 is incomparable.
  std::vector<Bitmap> ancestors(3, Bitmap(3));
  ancestors[1].Set(0);
  bool capped = true;
  std::vector<std::vector<int>> subsets = EnumerateBenefitSubsets(
      {0, 1, 2}, /*max_degree=*/2, /*max_subsets=*/128, &ancestors, &capped);
  EXPECT_FALSE(capped);
  // Empty + three singletons + {0,2} + {1,2}; {0,1} is pruned.
  ASSERT_EQ(subsets.size(), 6u);
  EXPECT_EQ(subsets[4], std::vector<int>({0, 2}));
  EXPECT_EQ(subsets[5], std::vector<int>({1, 2}));
}

TEST(EnumerateBenefitSubsetsTest, CapTruncatesAndReportsDeterministically) {
  bool capped = false;
  std::vector<std::vector<int>> subsets =
      EnumerateBenefitSubsets({1, 2, 3, 4}, /*max_degree=*/2,
                              /*max_subsets=*/3, nullptr, &capped);
  EXPECT_TRUE(capped);
  // The cap keeps the size-ascending prefix: empty + first two singletons.
  ASSERT_EQ(subsets.size(), 3u);
  EXPECT_TRUE(subsets[0].empty());
  EXPECT_EQ(subsets[1], std::vector<int>({1}));
  EXPECT_EQ(subsets[2], std::vector<int>({2}));
}

// ------------------------------------------------- Table mechanics.

BenefitEntry Entry(double cost, std::vector<int> used = {}) {
  BenefitEntry e;
  e.cost = cost;
  e.used = std::move(used);
  return e;
}

TEST(BenefitTableMechanicsTest, SubsetKeyMatchesCostCacheSignatureTail) {
  EXPECT_EQ(BenefitTable::SubsetKey({}), "");
  EXPECT_EQ(BenefitTable::SubsetKey({1, 5}), "1,5,");
}

TEST(BenefitTableMechanicsTest, LookupIsExactAndFirstInsertWins) {
  BenefitTable table(/*max_degree=*/1);
  table.Insert(0, {}, Entry(10.0));
  table.Insert(0, {1}, Entry(7.0, {1}));
  table.Insert(0, {1}, Entry(99.0));  // Ignored: first insert wins.
  EXPECT_EQ(table.entries(), 2u);
  BenefitEntry out;
  ASSERT_TRUE(table.Lookup(0, {1}, &out));
  EXPECT_EQ(out.cost, 7.0);
  EXPECT_EQ(out.used, std::vector<int>({1}));
  EXPECT_FALSE(table.Lookup(0, {1, 2}, &out));  // Not a priced subset.
  EXPECT_FALSE(table.Lookup(3, {}, &out));      // Unknown class.
}

TEST(BenefitTableMechanicsTest, ComposeTakesMinOverPricedSubsets) {
  BenefitTable table(/*max_degree=*/1);
  table.Insert(0, {}, Entry(10.0));
  table.Insert(0, {1}, Entry(7.0, {1}));
  table.Insert(0, {2}, Entry(8.0, {2}));
  table.Insert(0, {3}, Entry(1.0, {3}));  // Not ⊆ the overlap below.
  BenefitEntry out;
  ASSERT_TRUE(table.Compose(0, {1, 2}, &out));
  EXPECT_EQ(out.cost, 7.0);
  EXPECT_EQ(out.used, std::vector<int>({1}));
  // The empty set alone still composes (collection-scan upper bound).
  ASSERT_TRUE(table.Compose(0, {4}, &out));
  EXPECT_EQ(out.cost, 10.0);
  // A class with nothing priced cannot compose.
  EXPECT_FALSE(table.Compose(7, {1}, &out));
}

TEST(BenefitTableMechanicsTest, TruncationIsSticky) {
  BenefitTable table(/*max_degree=*/1);
  EXPECT_FALSE(table.truncated());
  table.MarkTruncated(StopReason::kDeadline);
  EXPECT_TRUE(table.truncated());
  EXPECT_EQ(table.stop_reason(), StopReason::kDeadline);
  EXPECT_TRUE(table.stats().truncated);
}

// ----------------------------------------------------- XMark fixture.

class BenefitDecompositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&db_, "xmark", 6, params, 42).ok());
    workload_ = MakeXMarkWorkload("xmark");
    optimizer_ = std::make_unique<Optimizer>(&db_, cost_model_);
    Result<EnumerationResult> enumerated =
        EnumerateBasicCandidates(db_, workload_, &cache_);
    ASSERT_TRUE(enumerated.ok());
    candidates_ = GeneralizeCandidates(enumerated->candidates, db_,
                                       GeneralizeOptions());
    dag_ = GeneralizationDag::Build(candidates_, &cache_);
  }

  std::unique_ptr<ConfigurationEvaluator> MakeEvaluator(int threads = 1) {
    return std::make_unique<ConfigurationEvaluator>(
        optimizer_.get(), &workload_, &base_catalog_, &candidates_, &cache_,
        /*account_update_cost=*/true, threads);
  }

  /// Prices a table on a fresh evaluator and returns the evaluator.
  std::unique_ptr<ConfigurationEvaluator> MakeDecomposed(
      const DecomposeOptions& opts, int threads = 1,
      Deadline deadline = Deadline::Infinite()) {
    std::unique_ptr<ConfigurationEvaluator> evaluator =
        MakeEvaluator(threads);
    Result<BenefitPricingReport> report =
        evaluator->PriceBenefitTable(opts, &dag_, deadline);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return evaluator;
  }

  static DecomposeOptions Degree(int degree, bool compose = true) {
    DecomposeOptions opts;
    opts.enabled = true;
    opts.max_degree = degree;
    opts.compose_above_degree = compose;
    return opts;
  }

  Database db_;
  Workload workload_;
  Catalog base_catalog_;
  CostModel cost_model_;
  ContainmentCache cache_;
  std::vector<CandidateIndex> candidates_;
  GeneralizationDag dag_;
  std::unique_ptr<Optimizer> optimizer_;
};

constexpr double kBudget = 64.0 * 1024;

TEST_F(BenefitDecompositionTest, DagAncestorsMatchesDagStructure) {
  std::vector<Bitmap> ancestors = DagAncestors(dag_);
  ASSERT_EQ(ancestors.size(), candidates_.size());
  // Every DAG edge parent→child makes the parent a strict ancestor of the
  // child, and ancestry is transitive through grandparents.
  for (size_t n = 0; n < dag_.nodes().size(); ++n) {
    for (int parent : dag_.nodes()[n].parents) {
      EXPECT_TRUE(ancestors[n].Test(static_cast<size_t>(parent)));
      for (int grand : dag_.nodes()[static_cast<size_t>(parent)].parents) {
        EXPECT_TRUE(ancestors[n].Test(static_cast<size_t>(grand)));
      }
    }
    // Strict: nothing is its own ancestor.
    EXPECT_FALSE(ancestors[n].Test(n));
  }
}

TEST_F(BenefitDecompositionTest, PricingIsDeterministicAcrossThreadCounts) {
  std::unique_ptr<ConfigurationEvaluator> serial =
      MakeDecomposed(Degree(2), /*threads=*/1);
  std::unique_ptr<ConfigurationEvaluator> parallel =
      MakeDecomposed(Degree(2), /*threads=*/4);
  ASSERT_TRUE(serial->decomposed());
  ASSERT_TRUE(parallel->decomposed());
  EXPECT_GT(serial->benefit_table()->entries(), 0u);
  // The full table dump — every class, every priced subset, every cost
  // and attribution, in enumeration order — is byte-identical.
  EXPECT_EQ(serial->benefit_table()->DebugString(),
            parallel->benefit_table()->DebugString());
  EXPECT_EQ(serial->DescribeDecomposition(),
            parallel->DescribeDecomposition());
}

TEST_F(BenefitDecompositionTest, TableHitsAreExactNotEstimates) {
  std::unique_ptr<ConfigurationEvaluator> exact = MakeEvaluator();
  std::unique_ptr<ConfigurationEvaluator> decomposed =
      MakeDecomposed(Degree(1));
  // Singleton configurations: every query's relevant overlap is a priced
  // subset, so the decomposed evaluation must be bit-identical.
  for (int c : {0, 1}) {
    Result<ConfigurationEvaluator::Evaluation> e = exact->Evaluate({c});
    Result<ConfigurationEvaluator::Evaluation> d = decomposed->Evaluate({c});
    ASSERT_TRUE(e.ok());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(e->workload_cost, d->workload_cost);
    EXPECT_EQ(e->update_cost, d->update_cost);
    EXPECT_EQ(e->per_query_cost, d->per_query_cost);
    EXPECT_EQ(e->used_candidates, d->used_candidates);
  }
  EXPECT_GT(decomposed->benefit_table()->stats().table_hits, 0u);
}

TEST_F(BenefitDecompositionTest, ComposedScoreIsConservativeUpperBound) {
  std::unique_ptr<ConfigurationEvaluator> exact = MakeEvaluator();
  std::unique_ptr<ConfigurationEvaluator> decomposed =
      MakeDecomposed(Degree(1));
  std::vector<int> all(candidates_.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  Result<ConfigurationEvaluator::Evaluation> e = exact->Evaluate(all);
  Result<ConfigurationEvaluator::Evaluation> d = decomposed->Evaluate(all);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(d.ok());
  // Never optimistic: the composed cost bounds the true cost from above,
  // per query and in aggregate (cost monotonicity, benefit_table.h).
  EXPECT_GE(d->workload_cost, e->workload_cost - 1e-9);
  ASSERT_EQ(d->per_query_cost.size(), e->per_query_cost.size());
  for (size_t qi = 0; qi < e->per_query_cost.size(); ++qi) {
    EXPECT_GE(d->per_query_cost[qi], e->per_query_cost[qi] - 1e-9);
  }
  // And never worse than the best priced singleton: {0} ⊆ `all`, so the
  // composition is at least as good as evaluating {0} alone.
  Result<ConfigurationEvaluator::Evaluation> single = exact->Evaluate({0});
  ASSERT_TRUE(single.ok());
  EXPECT_LE(d->workload_cost, single->workload_cost + 1e-9);
  EXPECT_GT(decomposed->benefit_table()->stats().composed, 0u);
}

TEST_F(BenefitDecompositionTest, ComposeOffIsBitIdenticalToExactSearch) {
  // With composition disabled, every overlap beyond the priced degree
  // falls back to a real what-if call, making the decomposed searches
  // bit-identical to the exact ones — the determinism anchor of the mode.
  SearchOptions options;
  options.space_budget_bytes = kBudget;
  struct Algorithm {
    const char* name;
    std::function<Result<SearchResult>(ConfigurationEvaluator*)> run;
  };
  const std::vector<Algorithm> algorithms = {
      {"greedy",
       [&](ConfigurationEvaluator* e) { return GreedySearch(e, options); }},
      {"heuristic",
       [&](ConfigurationEvaluator* e) {
         return GreedyHeuristicSearch(e, options);
       }},
      {"topdown",
       [&](ConfigurationEvaluator* e) {
         return TopDownSearch(dag_, e, options);
       }},
  };
  for (const Algorithm& algorithm : algorithms) {
    std::unique_ptr<ConfigurationEvaluator> exact = MakeEvaluator();
    std::unique_ptr<ConfigurationEvaluator> decomposed =
        MakeDecomposed(Degree(1, /*compose=*/false));
    Result<SearchResult> e = algorithm.run(exact.get());
    Result<SearchResult> d = algorithm.run(decomposed.get());
    ASSERT_TRUE(e.ok()) << algorithm.name;
    ASSERT_TRUE(d.ok()) << algorithm.name;
    EXPECT_EQ(e->chosen, d->chosen) << algorithm.name;
    EXPECT_EQ(e->workload_cost, d->workload_cost) << algorithm.name;
    EXPECT_EQ(e->update_cost, d->update_cost) << algorithm.name;
    EXPECT_EQ(e->baseline_cost, d->baseline_cost) << algorithm.name;
    EXPECT_EQ(e->benefit, d->benefit) << algorithm.name;
  }
}

TEST_F(BenefitDecompositionTest, FallbackAndComposedAccounting) {
  // Candidates 0 and 1 are both relevant to the namerica quantity
  // queries, so the {0,1} overlap exceeds a degree-1 table.
  std::unique_ptr<ConfigurationEvaluator> no_compose =
      MakeDecomposed(Degree(1, /*compose=*/false));
  ASSERT_TRUE(no_compose->Evaluate({0, 1}).ok());
  BenefitTableStats stats = no_compose->benefit_table()->stats();
  EXPECT_GT(stats.fallback_whatifs, 0u);
  EXPECT_EQ(stats.composed, 0u);

  std::unique_ptr<ConfigurationEvaluator> compose = MakeDecomposed(Degree(1));
  ASSERT_TRUE(compose->Evaluate({0, 1}).ok());
  stats = compose->benefit_table()->stats();
  EXPECT_GT(stats.composed, 0u);
  EXPECT_EQ(stats.fallback_whatifs, 0u);
}

TEST_F(BenefitDecompositionTest, DecomposedTraceCarriesTableStats) {
  std::unique_ptr<ConfigurationEvaluator> decomposed =
      MakeDecomposed(Degree(1));
  SearchOptions options;
  options.space_budget_bytes = kBudget;
  Result<SearchResult> result = GreedySearch(decomposed.get(), options);
  ASSERT_TRUE(result.ok());
  const std::vector<std::string>& trace = result->trace;
  EXPECT_NE(std::find_if(trace.begin(), trace.end(),
                         [](const std::string& line) {
                           return line.find("decomposed scoring:") !=
                                  std::string::npos;
                         }),
            trace.end());
  bool found_priced = false;
  for (const std::string& line : trace) {
    if (line.find("benefit.priced = ") != std::string::npos) {
      found_priced = true;
    }
  }
  EXPECT_TRUE(found_priced);
  EXPECT_GT(result->counters.benefit.priced, 0u);
  // The exact evaluator's counters stay silent about the benefit table.
  std::unique_ptr<ConfigurationEvaluator> exact = MakeEvaluator();
  Result<SearchResult> exact_result = GreedySearch(exact.get(), options);
  ASSERT_TRUE(exact_result.ok());
  EXPECT_EQ(exact_result->counters.benefit.priced, 0u);
  EXPECT_EQ(exact_result->counters.benefit.entries, 0u);
}

TEST_F(BenefitDecompositionTest, ExpiredDeadlineYieldsUsablePartialTable) {
  std::unique_ptr<ConfigurationEvaluator> evaluator = MakeEvaluator();
  Result<BenefitPricingReport> report = evaluator->PriceBenefitTable(
      Degree(1), &dag_, Deadline::AfterMillis(0));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->stop_reason, StopReason::kDeadline);
  EXPECT_LT(report->subsets_priced, report->subsets_enumerated);
  ASSERT_TRUE(evaluator->decomposed());
  EXPECT_TRUE(evaluator->benefit_table()->truncated());
  EXPECT_NE(evaluator->DescribeDecomposition().find("deadline"),
            std::string::npos);
  // The truncated table still evaluates — unpriced cells fall back to
  // real what-ifs, so the result matches the exact path.
  std::unique_ptr<ConfigurationEvaluator> exact = MakeEvaluator();
  Result<ConfigurationEvaluator::Evaluation> d = evaluator->Evaluate({0});
  Result<ConfigurationEvaluator::Evaluation> e = exact->Evaluate({0});
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(d->workload_cost, e->workload_cost);
}

TEST_F(BenefitDecompositionTest, PreCancelledTokenStopsPricing) {
  std::unique_ptr<ConfigurationEvaluator> evaluator = MakeEvaluator();
  CancelToken token = CancelToken::Cancellable();
  token.Cancel();
  evaluator->set_cancel(token);
  Result<BenefitPricingReport> report = evaluator->PriceBenefitTable(
      Degree(1), &dag_, Deadline::Infinite());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->stop_reason, StopReason::kCancelled);
  EXPECT_TRUE(evaluator->benefit_table()->truncated());
}

// --------------------------------------------- Advisor-level pipeline.

class BenefitAdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&db_, "xmark", 6, params, 42).ok());
  }

  AdvisorOptions Options(SearchAlgorithm algorithm) {
    AdvisorOptions options;
    options.space_budget_bytes = 512.0 * 1024;
    options.algorithm = algorithm;
    options.threads = 1;
    return options;
  }

  /// What-if cost requests the advise issued (the repo-wide convention,
  /// see wlm_test.cc): every per-(query, configuration) evaluation the
  /// search performs, whether the plan cache can serve it or not. This is
  /// the quantity the benefit table eliminates — table-resolved queries
  /// never reach the what-if layer at all.
  static uint64_t WhatIfRequests(const Recommendation& rec) {
    const CostCacheStats& c = rec.search.counters.cost;
    return c.hits + c.misses + c.bypasses;
  }

  /// True optimizer invocations (signature-cache misses).
  static uint64_t OptimizerRuns(const Recommendation& rec) {
    return rec.search.counters.cost.misses + rec.search.counters.cost.bypasses;
  }

  Database db_;
  Catalog catalog_;
  CostModel cost_model_;
};

TEST_F(BenefitAdvisorTest, PromisedBenefitWithinEpsilonForAllAlgorithms) {
  const Workload workload = MakeXMarkWorkload("xmark");
  for (SearchAlgorithm algorithm :
       {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyHeuristic,
        SearchAlgorithm::kTopDown}) {
    AdvisorOptions exact_options = Options(algorithm);
    Result<Recommendation> exact =
        Advisor(&db_, &catalog_, exact_options).Recommend(workload);
    ASSERT_TRUE(exact.ok()) << SearchAlgorithmName(algorithm);

    AdvisorOptions decomposed_options = Options(algorithm);
    decomposed_options.decompose.enabled = true;
    decomposed_options.decompose.max_degree = 2;
    Result<Recommendation> decomposed =
        Advisor(&db_, &catalog_, decomposed_options).Recommend(workload);
    ASSERT_TRUE(decomposed.ok()) << SearchAlgorithmName(algorithm);
    EXPECT_TRUE(decomposed->decomposed);
    EXPECT_EQ(decomposed->pricing.stop_reason, StopReason::kConverged);
    EXPECT_FALSE(decomposed->indexes.empty());

    // The acceptance bound: promised benefit within ε of the exact
    // search's (the composed score is conservative, so the decomposed
    // promise can only understate, never overstate).
    const double epsilon = decomposed_options.decompose.epsilon;
    EXPECT_GE(decomposed->benefit,
              exact->benefit * (1.0 - epsilon))
        << SearchAlgorithmName(algorithm);
    EXPECT_LE(decomposed->benefit,
              exact->benefit * (1.0 + epsilon))
        << SearchAlgorithmName(algorithm);
    // The report surfaces the mode.
    EXPECT_NE(decomposed->Report().find("Decomposed scoring:"),
              std::string::npos);
  }
}

TEST_F(BenefitAdvisorTest, DecomposedAdvisingCutsWhatIfCallsTenfold) {
  // The acceptance property at test-runnable scale: a 200-template
  // workload (the base XMark mix plus template variations with distinct
  // regions, paths, and literals — what a compressed log presents)
  // advised with the default greedy+heuristic search issues ≥10× fewer
  // what-if calls decomposed than exact. The ratio grows with template
  // count (pricing is O(queries + candidates); exact evaluation is
  // O(configurations × queries)); the bench regression gate holds the
  // same floor at the 10k-template row.
  Workload workload = MakeXMarkWorkload("xmark");
  Random rng(7);
  Workload unseen = MakeXMarkUnseenWorkload("xmark", &rng, 185);
  int n = 0;
  for (const Query& q : unseen.queries()) {
    ASSERT_TRUE(
        workload.AddQueryText(q.text, q.weight, q.id + std::to_string(n++))
            .ok());
  }

  AdvisorOptions exact_options = Options(SearchAlgorithm::kGreedyHeuristic);
  Result<Recommendation> exact =
      Advisor(&db_, &catalog_, exact_options).Recommend(workload);
  ASSERT_TRUE(exact.ok());

  AdvisorOptions decomposed_options = exact_options;
  decomposed_options.decompose.enabled = true;
  Result<Recommendation> decomposed =
      Advisor(&db_, &catalog_, decomposed_options).Recommend(workload);
  ASSERT_TRUE(decomposed.ok());
  EXPECT_TRUE(decomposed->decomposed);

  uint64_t exact_calls = WhatIfRequests(*exact);
  uint64_t decomposed_calls = WhatIfRequests(*decomposed);
  ASSERT_GT(decomposed_calls, 0u);
  EXPECT_GE(exact_calls, 10 * decomposed_calls)
      << "exact=" << exact_calls << " decomposed=" << decomposed_calls;
  // The decomposed path also never runs the optimizer itself more often.
  EXPECT_LE(OptimizerRuns(*decomposed), OptimizerRuns(*exact));
  // Same ballpark recommendation quality on the way.
  EXPECT_GE(decomposed->benefit, exact->benefit * 0.95);
}

}  // namespace
}  // namespace xia
