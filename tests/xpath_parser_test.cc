#include <gtest/gtest.h>

#include "xpath/lexer.h"
#include "xpath/parser.h"
#include "xpath/path.h"

namespace xia {
namespace {

PathPattern MustPattern(const std::string& text) {
  Result<PathPattern> p = ParsePathPattern(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status().ToString();
  return p.ok() ? std::move(*p) : PathPattern();
}

ParsedPath MustPath(const std::string& text) {
  Result<ParsedPath> p = ParsePathExpr(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status().ToString();
  return p.ok() ? std::move(*p) : ParsedPath();
}

// ----------------------------------------------------------------- Lexer.

TEST(LexerTest, TokenizesStepsAndPredicates) {
  Result<std::vector<PathToken>> tokens =
      TokenizePath("/a//b[@id = \"x\"]/c[d > 3.5]");
  ASSERT_TRUE(tokens.ok());
  // /, a, //, b, [, @, id, =, "x", ], /, c, [, d, >, 3.5, ], END
  EXPECT_EQ(tokens->size(), 18u);
  EXPECT_EQ((*tokens)[0].kind, PathTokenKind::kSlash);
  EXPECT_EQ((*tokens)[2].kind, PathTokenKind::kDoubleSlash);
  EXPECT_EQ((*tokens)[8].kind, PathTokenKind::kString);
  EXPECT_EQ((*tokens)[8].text, "x");
  EXPECT_EQ((*tokens)[15].kind, PathTokenKind::kNumber);
  EXPECT_EQ((*tokens)[15].text, "3.5");
}

TEST(LexerTest, OperatorVariants) {
  Result<std::vector<PathToken>> tokens = TokenizePath("<= >= != < > =");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> ops;
  for (const PathToken& t : *tokens) {
    if (t.kind == PathTokenKind::kOp) ops.push_back(t.text);
  }
  EXPECT_EQ(ops,
            (std::vector<std::string>{"<=", ">=", "!=", "<", ">", "="}));
}

TEST(LexerTest, RejectsBadInput) {
  EXPECT_FALSE(TokenizePath("/a[x ! 3]").ok());
  EXPECT_FALSE(TokenizePath("/a[\"unterminated]").ok());
  EXPECT_FALSE(TokenizePath("/a#b").ok());
}

// --------------------------------------------------------------- Pattern.

TEST(PatternParserTest, ParsesAndRoundTrips) {
  for (const std::string text :
       {"/site/regions/africa/item/quantity", "//keyword", "//*",
        "/site/regions/*/item/*", "//@id", "/a//b/*/@x",
        "/site/people/person/profile"}) {
    PathPattern p = MustPattern(text);
    EXPECT_EQ(p.ToString(), text);
    // Parse the rendering again: identical pattern.
    EXPECT_EQ(MustPattern(p.ToString()), p);
  }
}

TEST(PatternParserTest, StepStructure) {
  PathPattern p = MustPattern("/a//b/*/@c");
  ASSERT_EQ(p.length(), 4u);
  EXPECT_EQ(p.steps()[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps()[0].name, "a");
  EXPECT_EQ(p.steps()[1].axis, Axis::kDescendant);
  EXPECT_TRUE(p.steps()[2].wildcard);
  EXPECT_TRUE(p.steps()[3].is_attribute);
  EXPECT_EQ(p.steps()[3].name, "c");
  EXPECT_TRUE(p.EndsWithAttribute());
  EXPECT_TRUE(p.HasDescendantAxis());
}

TEST(PatternParserTest, UniversalPatterns) {
  EXPECT_EQ(PathPattern::AllElements().ToString(), "//*");
  EXPECT_EQ(PathPattern::AllAttributes().ToString(), "//@*");
}

TEST(PatternParserTest, RejectsPredicatesInPatterns) {
  EXPECT_FALSE(ParsePathPattern("/a[b = 1]").ok());
}

TEST(PatternParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParsePathPattern("a/b").ok());        // Must start with '/'.
  EXPECT_FALSE(ParsePathPattern("/a/").ok());        // Trailing slash.
  EXPECT_FALSE(ParsePathPattern("").ok());
  EXPECT_FALSE(ParsePathPattern("/@a/b").ok());      // Attr must be last.
  EXPECT_FALSE(ParsePathPattern("/a/@").ok());
}

TEST(PatternTest, HashConsistentWithEquality) {
  PathPattern a = MustPattern("/a/*/c");
  PathPattern b = MustPattern("/a/*/c");
  PathPattern c = MustPattern("/a//c");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
}

TEST(PatternTest, ConcatAppends) {
  PathPattern a = MustPattern("/a/b");
  PathPattern rel = MustPattern("/c/d");
  EXPECT_EQ(a.Concat(rel).ToString(), "/a/b/c/d");
}

TEST(PatternTest, WildcardCountCountsStarsAndDescendants) {
  EXPECT_EQ(MustPattern("/a/b/c").WildcardCount(), 0u);
  EXPECT_EQ(MustPattern("/a/*/c").WildcardCount(), 1u);
  EXPECT_EQ(MustPattern("//a/*").WildcardCount(), 2u);
}

// ------------------------------------------------------------ Predicates.

TEST(PathExprTest, ValuePredicate) {
  ParsedPath p = MustPath("/site/regions/africa/item[quantity > 5]");
  EXPECT_EQ(p.pattern.ToString(), "/site/regions/africa/item");
  ASSERT_EQ(p.predicates.size(), 1u);
  const PathPredicate& pred = p.predicates[0];
  EXPECT_EQ(pred.step_index, 3u);
  EXPECT_EQ(pred.rel.ToString(), "/quantity");
  EXPECT_EQ(pred.op, CompareOp::kGt);
  EXPECT_EQ(pred.literal, "5");
}

TEST(PathExprTest, PredicateAtIntermediateStep) {
  ParsedPath p = MustPath("/a/b[c = \"x\"]/d");
  EXPECT_EQ(p.pattern.ToString(), "/a/b/d");
  ASSERT_EQ(p.predicates.size(), 1u);
  EXPECT_EQ(p.predicates[0].step_index, 1u);
}

TEST(PathExprTest, AttributePredicate) {
  ParsedPath p = MustPath("/site/people/person[profile/@income >= 50000]");
  ASSERT_EQ(p.predicates.size(), 1u);
  EXPECT_EQ(p.predicates[0].rel.ToString(), "/profile/@income");
  EXPECT_EQ(p.predicates[0].op, CompareOp::kGe);
}

TEST(PathExprTest, ExistencePredicate) {
  ParsedPath p = MustPath("/a/b[c/d]");
  ASSERT_EQ(p.predicates.size(), 1u);
  EXPECT_EQ(p.predicates[0].op, CompareOp::kExists);
  EXPECT_EQ(p.predicates[0].rel.ToString(), "/c/d");
}

TEST(PathExprTest, DotAndTextPredicates) {
  ParsedPath dot = MustPath("/a/b[. = \"v\"]");
  ASSERT_EQ(dot.predicates.size(), 1u);
  EXPECT_TRUE(dot.predicates[0].rel.empty());

  ParsedPath text = MustPath("/a/b[text() = \"v\"]");
  ASSERT_EQ(text.predicates.size(), 1u);
  EXPECT_TRUE(text.predicates[0].rel.empty());
}

TEST(PathExprTest, ContainsPredicate) {
  ParsedPath p = MustPath("/a/b[contains(description, \"gold\")]");
  ASSERT_EQ(p.predicates.size(), 1u);
  EXPECT_EQ(p.predicates[0].op, CompareOp::kContains);
  EXPECT_EQ(p.predicates[0].literal, "gold");
}

TEST(PathExprTest, MultiplePredicatesOnOneStep) {
  ParsedPath p = MustPath("/a/b[c > 1][d = \"x\"]");
  ASSERT_EQ(p.predicates.size(), 2u);
  EXPECT_EQ(p.predicates[0].step_index, 1u);
  EXPECT_EQ(p.predicates[1].step_index, 1u);
}

TEST(PathExprTest, DescendantInsidePredicate) {
  ParsedPath p = MustPath("/a[//k = \"v\"]");
  ASSERT_EQ(p.predicates.size(), 1u);
  EXPECT_EQ(p.predicates[0].rel.steps()[0].axis, Axis::kDescendant);
}

TEST(PathPredicateTest, AbsolutePatternPrefixesMainPath) {
  ParsedPath p = MustPath("/a/b[c/d > 3]/e");
  ASSERT_EQ(p.predicates.size(), 1u);
  EXPECT_EQ(p.predicates[0].AbsolutePattern(p.pattern).ToString(),
            "/a/b/c/d");
}

TEST(PathExprTest, ToStringRendersPredicatesInline) {
  const std::string text = "/a/b[c > 5]/d";
  ParsedPath p = MustPath(text);
  EXPECT_EQ(p.ToString(), text);
}

// ------------------------------------------------------------- Compare.

TEST(CompareValuesTest, NumericWhenBothNumeric) {
  EXPECT_TRUE(CompareValues(CompareOp::kGt, "10", "9.5"));
  EXPECT_FALSE(CompareValues(CompareOp::kGt, "10", "10"));
  EXPECT_TRUE(CompareValues(CompareOp::kGe, "10", "10"));
  EXPECT_TRUE(CompareValues(CompareOp::kEq, "5.0", "5"));
  EXPECT_TRUE(CompareValues(CompareOp::kNe, "5", "6"));
}

TEST(CompareValuesTest, LexicographicWhenNonNumeric) {
  EXPECT_TRUE(CompareValues(CompareOp::kLt, "apple", "banana"));
  // "10" < "9" lexicographically would be true, but both are numeric,
  // so the comparison is numeric: 10 < 9 is false.
  EXPECT_FALSE(CompareValues(CompareOp::kLt, "10", "9"));
  EXPECT_TRUE(CompareValues(CompareOp::kGe, "2004-05-01", "2003-12-31"));
}

TEST(CompareValuesTest, ContainsAndExists) {
  EXPECT_TRUE(CompareValues(CompareOp::kContains, "solid gold ring", "gold"));
  EXPECT_FALSE(CompareValues(CompareOp::kContains, "silver", "gold"));
  EXPECT_TRUE(CompareValues(CompareOp::kExists, "anything", "ignored"));
}

}  // namespace
}  // namespace xia
