// Cross-module edge cases that the per-module suites do not reach.

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "advisor/candidate.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "optimizer/cardinality.h"
#include "workload/xmark_queries.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xmldata/xmark_gen.h"
#include "xpath/parser.h"

namespace xia {
namespace {

// --------------------------------------------------------- XML entities.

TEST(XmlEdgeTest, NumericCharRefBoundaries) {
  NameTable names;
  XmlParser parser(&names);
  // Max code point is fine; beyond it and zero are rejected.
  EXPECT_TRUE(parser.Parse("<t>&#x10FFFF;</t>").ok());
  EXPECT_FALSE(parser.Parse("<t>&#x110000;</t>").ok());
  EXPECT_FALSE(parser.Parse("<t>&#0;</t>").ok());
  EXPECT_FALSE(parser.Parse("<t>&#xZZ;</t>").ok());
  // Multi-byte encodings round-trip.
  Result<Document> doc = parser.Parse("<t>&#228;&#x4E2D;</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->TextValue(0), "\xC3\xA4\xE4\xB8\xAD");
}

TEST(XmlEdgeTest, DeeplyNestedDocument) {
  NameTable names;
  XmlParser parser(&names);
  std::string xml;
  const int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) xml += "<d>";
  xml += "x";
  for (int i = 0; i < kDepth; ++i) xml += "</d>";
  Result<Document> doc = parser.Parse(xml);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->num_nodes(), static_cast<size_t>(kDepth) + 1);
  EXPECT_EQ(doc->node(kDepth - 1).level, kDepth - 1);
  // Deep descendant patterns still evaluate.
  Result<PathPattern> p = ParsePathPattern("//d");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(EvaluatePattern(*doc, names, *p).size(),
            static_cast<size_t>(kDepth));
}

// ---------------------------------------------------------- Candidates.

TEST(CandidateEdgeTest, ToStringMarksGeneralized) {
  CandidateIndex cand;
  cand.def.collection = "c";
  Result<PathPattern> p = ParsePathPattern("/a/*");
  ASSERT_TRUE(p.ok());
  cand.def.pattern = *p;
  cand.def.type = ValueType::kDouble;
  cand.stats.size_bytes = 2048;
  cand.stats.entries = 10;
  cand.from_generalization = true;
  std::string s = cand.ToString();
  EXPECT_NE(s.find("generalized"), std::string::npos);
  EXPECT_NE(s.find("DOUBLE"), std::string::npos);
  EXPECT_NE(s.find("2.0 KB"), std::string::npos);
}

TEST(CandidateEdgeTest, MergeUnionsSourcesSorted) {
  CandidateIndex a;
  a.source_queries = {3, 1};
  a.sargable = false;
  CandidateIndex b;
  b.source_queries = {2, 1};
  b.sargable = true;
  MergeCandidate(&a, b);
  EXPECT_EQ(a.source_queries, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(a.sargable);
  // Merging again is idempotent.
  MergeCandidate(&a, b);
  EXPECT_EQ(a.source_queries, (std::vector<int>{1, 2, 3}));
}

// --------------------------------------------------------- Cardinality.

TEST(CardinalityEdgeTest, ExistsSelectivityIsOne) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.LoadXml("c", "<a><b>1</b></a>").ok());
  ASSERT_TRUE(db.Analyze("c").ok());
  CardinalityEstimator card(db.synopsis("c"));
  QueryPredicate exists;
  Result<PathPattern> p = ParsePathPattern("/a/b");
  ASSERT_TRUE(p.ok());
  exists.pattern = *p;
  exists.op = CompareOp::kExists;
  EXPECT_EQ(card.PredicateSelectivity(exists), 1.0);
}

TEST(CardinalityEdgeTest, UnknownPatternCountsZero) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.LoadXml("c", "<a/>").ok());
  ASSERT_TRUE(db.Analyze("c").ok());
  CardinalityEstimator card(db.synopsis("c"));
  Result<PathPattern> p = ParsePathPattern("//nothing/here");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(card.PatternCount(*p), 0.0);
}

// ----------------------------------------------------------- Formatting.

TEST(FormatEdgeTest, LargeAndTinyDoubles) {
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(-0.5), "-0.5");
  // Very large integers fall back to compact scientific form.
  EXPECT_NE(FormatDouble(1e20).find("e+"), std::string::npos);
}

// --------------------------------------------------------- Determinism.

TEST(DeterminismTest, AdvisorIsDeterministic) {
  auto run_once = [] {
    Database db;
    XMarkParams params;
    XIA_CHECK(PopulateXMark(&db, "xmark", 4, params, 42).ok());
    Workload workload = MakeXMarkWorkload("xmark");
    Catalog catalog;
    AdvisorOptions options;
    options.space_budget_bytes = 64.0 * 1024;
    Advisor advisor(&db, &catalog, options);
    Result<Recommendation> rec = advisor.Recommend(workload);
    XIA_CHECK(rec.ok());
    std::string fingerprint;
    for (const IndexDefinition& def : rec->indexes) {
      fingerprint += def.DdlString() + "\n";
    }
    fingerprint += FormatDouble(rec->benefit);
    return fingerprint;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --------------------------------------------------------- Empty inputs.

TEST(EmptyInputTest, AdvisorOnEmptyCollection) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("empty").ok());
  ASSERT_TRUE(db.Analyze("empty").ok());
  Workload workload;
  ASSERT_TRUE(
      workload.AddQueryText("for $x in doc(\"empty\")/a/b return $x").ok());
  Catalog catalog;
  Advisor advisor(&db, &catalog, AdvisorOptions());
  Result<Recommendation> rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok());
  // Nothing to index: no benefit, possibly no recommendation.
  EXPECT_EQ(rec->benefit, 0.0);
}

TEST(EmptyInputTest, SynopsisOfEmptyCollection) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("empty").ok());
  ASSERT_TRUE(db.Analyze("empty").ok());
  const PathSynopsis* synopsis = db.synopsis("empty");
  ASSERT_NE(synopsis, nullptr);
  EXPECT_EQ(synopsis->NumPaths(), 0u);
  Result<PathPattern> p = ParsePathPattern("//*");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(synopsis->EstimateCount(*p), 0.0);
  EXPECT_TRUE(synopsis->Match(*p).empty());
}

}  // namespace
}  // namespace xia
