#include <gtest/gtest.h>

#include "common/string_util.h"
#include "storage/database.h"
#include "xmldata/tpox_gen.h"
#include "xmldata/xmark_gen.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xia {
namespace {

PathPattern P(const std::string& text) {
  Result<PathPattern> p = ParsePathPattern(text);
  EXPECT_TRUE(p.ok()) << text;
  return std::move(*p);
}

// ------------------------------------------------------------------ XMark.

TEST(XMarkGenTest, SchemaShapeIsXMarkLike) {
  NameTable names;
  Random rng(42);
  XMarkParams params;
  params.items_per_region = 3;
  Document doc = GenerateXMarkDocument(&names, params, &rng);
  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(names.NameOf(doc.node(0).name), "site");

  // All six regions present with the configured item count.
  for (const std::string region :
       {"africa", "asia", "australia", "europe", "namerica", "samerica"}) {
    std::vector<NodeIndex> items = EvaluatePattern(
        doc, names, P("/site/regions/" + region + "/item"));
    EXPECT_EQ(items.size(), 3u) << region;
  }
  // The paper's signature wildcard pattern covers all of them.
  EXPECT_EQ(EvaluatePattern(doc, names, P("/site/regions/*/item")).size(),
            18u);
  // Items carry the indexed sub-elements.
  EXPECT_EQ(
      EvaluatePattern(doc, names, P("/site/regions/*/item/quantity")).size(),
      18u);
  EXPECT_EQ(
      EvaluatePattern(doc, names, P("/site/regions/*/item/price")).size(),
      18u);
}

TEST(XMarkGenTest, PeopleAndAuctionsPopulated) {
  NameTable names;
  Random rng(1);
  XMarkParams params;
  Document doc = GenerateXMarkDocument(&names, params, &rng);
  EXPECT_EQ(EvaluatePattern(doc, names, P("/site/people/person")).size(),
            static_cast<size_t>(params.people));
  EXPECT_EQ(EvaluatePattern(doc, names,
                            P("/site/open_auctions/open_auction"))
                .size(),
            static_cast<size_t>(params.open_auctions));
  EXPECT_EQ(EvaluatePattern(doc, names,
                            P("/site/closed_auctions/closed_auction"))
                .size(),
            static_cast<size_t>(params.closed_auctions));
  // Attributes exist where the workload queries look for them.
  EXPECT_EQ(EvaluatePattern(doc, names,
                            P("/site/people/person/profile/@income"))
                .size(),
            static_cast<size_t>(params.people));
}

TEST(XMarkGenTest, ValuesAreWellFormed) {
  NameTable names;
  Random rng(9);
  XMarkParams params;
  Document doc = GenerateXMarkDocument(&names, params, &rng);
  for (NodeIndex n :
       EvaluatePattern(doc, names, P("/site/regions/*/item/quantity"))) {
    auto q = ParseDouble(doc.TextValue(n));
    ASSERT_TRUE(q.has_value());
    EXPECT_GE(*q, 1.0);
    EXPECT_LE(*q, 10.0);
  }
  for (NodeIndex n :
       EvaluatePattern(doc, names, P("/site/regions/*/item/price"))) {
    auto p = ParseDouble(doc.TextValue(n));
    ASSERT_TRUE(p.has_value());
    EXPECT_GT(*p, 0.0);
  }
}

TEST(XMarkGenTest, DeterministicForSeed) {
  NameTable names1, names2;
  Random rng1(5), rng2(5);
  XMarkParams params;
  Document a = GenerateXMarkDocument(&names1, params, &rng1);
  Document b = GenerateXMarkDocument(&names2, params, &rng2);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
}

TEST(XMarkGenTest, PopulateCreatesAndAnalyzes) {
  Database db;
  XMarkParams params;
  ASSERT_TRUE(PopulateXMark(&db, "xmark", 3, params, 42).ok());
  EXPECT_EQ(db.GetCollection("xmark")->num_docs(), 3u);
  EXPECT_NE(db.synopsis("xmark"), nullptr);
  // Populating again under the same name fails.
  EXPECT_FALSE(PopulateXMark(&db, "xmark", 1, params, 42).ok());
}

// ------------------------------------------------------------------- TPoX.

TEST(TpoxGenTest, CustomerShape) {
  NameTable names;
  Random rng(2);
  TpoxParams params;
  Document doc = GenerateTpoxCustomer(&names, params, &rng, 7);
  EXPECT_EQ(names.NameOf(doc.node(0).name), "Customer");
  EXPECT_EQ(
      EvaluatePattern(doc, names, P("/Customer/Accounts/Account")).size(),
      static_cast<size_t>(params.accounts_per_customer));
  EXPECT_EQ(EvaluatePattern(
                doc, names,
                P("/Customer/Accounts/Account/Balance/OnlineActualBal"))
                .size(),
            static_cast<size_t>(params.accounts_per_customer));
  EXPECT_EQ(
      EvaluatePattern(doc, names,
                      P("/Customer/Accounts/Account/Holdings/Position"))
          .size(),
      static_cast<size_t>(params.accounts_per_customer *
                          params.holdings_per_account));
}

TEST(TpoxGenTest, OrderAndSecurityShapes) {
  NameTable names;
  Random rng(3);
  TpoxParams params;
  Document order = GenerateTpoxOrder(&names, params, &rng, 1);
  EXPECT_EQ(EvaluatePattern(order, names, P("/FIXML/Order")).size(), 1u);
  EXPECT_EQ(
      EvaluatePattern(order, names, P("/FIXML/Order/Instrument/Symbol"))
          .size(),
      1u);
  EXPECT_EQ(EvaluatePattern(order, names, P("/FIXML/Order/@Side")).size(),
            1u);

  Document sec = GenerateTpoxSecurity(&names, params, &rng, 4);
  EXPECT_EQ(EvaluatePattern(sec, names, P("/Security/Price/PE")).size(), 1u);
  EXPECT_EQ(EvaluatePattern(sec, names, P("/Security/Sector")).size(), 1u);
}

TEST(TpoxGenTest, PopulateCreatesThreeCollections) {
  Database db;
  TpoxParams params;
  ASSERT_TRUE(PopulateTpox(&db, 5, 10, 4, params, 42).ok());
  EXPECT_EQ(db.CollectionNames(),
            (std::vector<std::string>{"custacc", "order", "security"}));
  EXPECT_EQ(db.GetCollection("custacc")->num_docs(), 5u);
  EXPECT_EQ(db.GetCollection("order")->num_docs(), 10u);
  EXPECT_EQ(db.GetCollection("security")->num_docs(), 4u);
  EXPECT_NE(db.synopsis("custacc"), nullptr);
  EXPECT_NE(db.synopsis("order"), nullptr);
  EXPECT_NE(db.synopsis("security"), nullptr);
}

}  // namespace
}  // namespace xia
