// xia retry layer + RetryingClient. Covers the retryable-status
// classifier, deterministic jittered backoff (two states with equal
// seeds draw identical schedules), attempt/budget exhaustion, the
// idempotency classifier for wire commands, and the RetryingClient
// against a live server: connect-retry while the server starts late,
// transparent reconnect with prologue replay after the server closes a
// session, and BUSY-exhaustion giving up with the last verdict.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "server/retrying_client.h"
#include "server/server.h"
#include "server/session.h"

namespace xia {
namespace {

TEST(RetryPolicyTest, ClassifierRetryableCodes) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::Unavailable("reset")));
  EXPECT_TRUE(
      RetryPolicy::IsRetryable(Status::ResourceExhausted("server busy")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Ok()));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::InvalidArgument("bad")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Internal("bug")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::NotFound("gone")));
}

TEST(RetryStateTest, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 50;
  policy.jitter = 0;  // Exact values without jitter.
  RetryState state(policy);
  EXPECT_EQ(state.DrawBackoffMillis(0), 10);
  EXPECT_EQ(state.DrawBackoffMillis(1), 20);
  EXPECT_EQ(state.DrawBackoffMillis(2), 40);
  EXPECT_EQ(state.DrawBackoffMillis(3), 50);  // Clamped.
  EXPECT_EQ(state.DrawBackoffMillis(9), 50);
}

TEST(RetryStateTest, JitterIsDeterministicPerSeedAndBounded) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100;
  policy.max_backoff_ms = 100000;
  policy.jitter = 0.2;
  policy.jitter_seed = 7;

  RetryState a(policy);
  RetryState b(policy);
  std::vector<int64_t> draws_a;
  for (int i = 0; i < 8; ++i) {
    int64_t draw = a.DrawBackoffMillis(i);
    draws_a.push_back(draw);
    // Within [1 - j, 1 + j] of the un-jittered backoff.
    int64_t base = 100LL << i;
    EXPECT_GE(draw, static_cast<int64_t>(base * 0.8) - 1) << "retry " << i;
    EXPECT_LE(draw, static_cast<int64_t>(base * 1.2) + 1) << "retry " << i;
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(b.DrawBackoffMillis(i), draws_a[static_cast<size_t>(i)])
        << "same seed must replay the same schedule";
  }

  policy.jitter_seed = 8;
  RetryState c(policy);
  bool diverged = false;
  for (int i = 0; i < 8; ++i) {
    diverged |= c.DrawBackoffMillis(i) != draws_a[static_cast<size_t>(i)];
  }
  EXPECT_TRUE(diverged) << "different seeds should draw different jitter";
}

TEST(RetryStateTest, PermanentErrorRefusedImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 1;
  RetryState state(policy);
  EXPECT_FALSE(state.NextAttempt(Status::InvalidArgument("no")));
  EXPECT_EQ(state.attempts(), 1);
}

TEST(RetryStateTest, MaxAttemptsBoundsTheLoop) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.jitter = 0;
  RetryState state(policy);
  EXPECT_TRUE(state.NextAttempt(Status::Unavailable("x")));
  EXPECT_TRUE(state.NextAttempt(Status::Unavailable("x")));
  EXPECT_FALSE(state.NextAttempt(Status::Unavailable("x")));
  EXPECT_EQ(state.attempts(), 3);
}

TEST(RetryStateTest, OverallBudgetStopsRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_ms = 30;
  policy.backoff_multiplier = 1.0;
  policy.jitter = 0;
  policy.overall_budget_ms = 50;
  RetryState state(policy);
  auto started = std::chrono::steady_clock::now();
  int granted = 0;
  while (state.NextAttempt(Status::Unavailable("x"))) ++granted;
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - started)
                        .count();
  // 30ms backoffs under a 50ms budget: one full sleep, maybe a truncated
  // second, never the unbounded attempt count.
  EXPECT_GE(granted, 1);
  EXPECT_LE(granted, 3);
  EXPECT_LT(elapsed_ms, 500);
}

TEST(RetryStateTest, AttemptDeadlineTracksTighterBudget) {
  RetryPolicy policy;
  policy.attempt_budget_ms = 1000;
  policy.overall_budget_ms = 0;
  RetryState unbounded_overall(policy);
  int64_t remaining = unbounded_overall.AttemptDeadline().RemainingMillis();
  EXPECT_GT(remaining, 0);
  EXPECT_LE(remaining, 1000);

  policy.attempt_budget_ms = 1000;
  policy.overall_budget_ms = 20;
  RetryState tight_overall(policy);
  EXPECT_LE(tight_overall.AttemptDeadline().RemainingMillis(), 20);
}

// ---------------------------------------------------------------------
// Idempotency classification of wire commands.

TEST(IdempotencyTest, ReadOnlyAndSessionLocalVerbsAreRetryable) {
  using server::RetryingClient;
  for (const char* line :
       {"ping", "help", "health", "ready", "stats", "show catalog",
        "run /site/item", "enumerate /a/b", "advise 64",
        "workload xmark", "query 1.0 /a", "whatif start", "drain",
        "db status", "log stats", "drift check", "failpoint list",
        "failpoint", "quit", "PING", "Advise --decompose 64"}) {
    EXPECT_TRUE(RetryingClient::IsIdempotentCommand(line)) << line;
  }
}

TEST(IdempotencyTest, SharedStateMutationsAreNotRetryable) {
  using server::RetryingClient;
  for (const char* line :
       {"gen xmark 4", "load docs /tmp/x.xml", "loadcoll docs /tmp/d",
        "savecoll docs /tmp/d", "analyze docs", "materialize",
        "capture on", "log clear", "log save /tmp/l", "drift readvise",
        "db checkpoint", "failpoint server.read=error:Internal"}) {
    EXPECT_FALSE(RetryingClient::IsIdempotentCommand(line)) << line;
  }
}

TEST(IdempotencyTest, DmlVerbsAreNotRetryableButWorkloadUpdateIs) {
  using server::RetryingClient;
  // The DML verbs mutate documents: a re-sent insert appends a second
  // document under a new DocId, so an ambiguous transport failure must
  // never be retried.
  for (const char* line :
       {"insert docs <site><item/></site>", "delete docs 3",
        "update docs 3 <site><item/></site>", "INSERT docs <a/>",
        "Update docs 0 <a/>"}) {
    EXPECT_FALSE(RetryingClient::IsIdempotentCommand(line)) << line;
  }
  // The legacy session-workload editor shares the `update` verb but only
  // touches per-connection state that is lost on reconnect anyway.
  for (const char* line :
       {"update insert 2.0 /site/item", "update delete 3",
        "UPDATE INSERT 1.0 /a/b"}) {
    EXPECT_TRUE(RetryingClient::IsIdempotentCommand(line)) << line;
  }
}

// ---------------------------------------------------------------------
// RetryingClient against a live server.

RetryPolicy FastPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 50;
  policy.jitter = 0;
  return policy;
}

TEST(RetryingClientTest, ConnectRetriesUntilLateServerArrives) {
  // The client knocks on a unix socket whose server binds ~80ms later:
  // the connect failures are kUnavailable, absorbed by the policy.
  std::string path =
      (std::filesystem::temp_directory_path() / "xia_retry_late.sock")
          .string();
  std::filesystem::remove(path);

  server::SharedState shared;
  server::ServerOptions options;
  options.unix_socket_path = path;
  std::unique_ptr<server::Server> srv;
  std::thread late_starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    srv = std::make_unique<server::Server>(&shared, options);
    ASSERT_TRUE(srv->Start().ok());
  });

  server::RetryingClient client(path, FastPolicy());
  Result<std::string> reply = client.Call("ping");
  late_starter.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(server::ClassifyResponse(*reply), server::ResponseKind::kOk);
  EXPECT_GE(client.retries(), 1u);
  EXPECT_EQ(client.giveups(), 0u);
  client.Close();
  srv.reset();
  std::filesystem::remove(path);
}

TEST(RetryingClientTest, ReconnectReplaysPrologueAfterServerClosesSession) {
  server::SharedState shared;
  server::ServerOptions options;
  options.tcp_port = 0;
  server::Server srv(&shared, options);
  ASSERT_TRUE(srv.Start().ok());

  server::RetryingClient client(srv.port(), FastPolicy());
  client.set_prologue({"workload xmark"});
  Result<std::string> first = client.Call("show workload");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_NE(first->find("queries"), std::string::npos) << *first;

  // `quit` makes the server close this session. The next idempotent call
  // hits the dead socket, reconnects, replays the prologue — so the new
  // session still has its workload — and succeeds.
  ASSERT_TRUE(client.Call("quit").ok());
  Result<std::string> after = client.Call("show workload");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(after->find("queries"), std::string::npos) << *after;
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_GE(client.retries(), 1u);
  EXPECT_EQ(client.giveups(), 0u);
}

TEST(RetryingClientTest, BusyForeverExhaustsPolicyAndGivesUp) {
  server::SharedState shared;
  server::ServerOptions options;
  options.tcp_port = 0;
  options.max_inflight_advises = 0;  // Every advise is BUSY.
  server::Server srv(&shared, options);
  ASSERT_TRUE(srv.Start().ok());

  RetryPolicy policy = FastPolicy();
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  server::RetryingClient client(srv.port(), policy);
  Result<std::string> reply = client.Call("advise 64");
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(client.retries(), 2u);  // 3 attempts = 2 retries.
  EXPECT_EQ(client.giveups(), 1u);

  // The give-up is per-call, not per-client: light verbs still work.
  Result<std::string> pong = client.Call("ping");
  ASSERT_TRUE(pong.ok());
}

TEST(RetryingClientTest, NonIdempotentVerbFailsFastAfterSend) {
  server::SharedState shared;
  server::ServerOptions options;
  options.tcp_port = 0;
  server::Server srv(&shared, options);
  ASSERT_TRUE(srv.Start().ok());

  server::RetryingClient client(srv.port(), FastPolicy());
  ASSERT_TRUE(client.Call("ping").ok());
  // Stop the server under the client's feet: the mutation's transport
  // failure is ambiguous (it may have executed), so no retry happens.
  srv.RequestStop();
  srv.Wait();
  Result<std::string> reply = client.Call("gen xmark 2");
  EXPECT_FALSE(reply.ok());
  EXPECT_NE(reply.status().message().find("not idempotent"),
            std::string::npos)
      << reply.status().ToString();
  EXPECT_EQ(client.retries(), 0u);
  EXPECT_EQ(client.giveups(), 1u);
}

TEST(RetryingClientTest, DmlVerbFailsFastAfterSend) {
  server::SharedState shared;
  server::ServerOptions options;
  options.tcp_port = 0;
  server::Server srv(&shared, options);
  ASSERT_TRUE(srv.Start().ok());

  server::RetryingClient client(srv.port(), FastPolicy());
  ASSERT_TRUE(client.Call("ping").ok());
  // A DML insert whose reply is lost may already have appended a
  // document server-side; the client must give up, not re-send.
  srv.RequestStop();
  srv.Wait();
  Result<std::string> reply =
      client.Call("insert docs <site><item/></site>");
  EXPECT_FALSE(reply.ok());
  EXPECT_NE(reply.status().message().find("not idempotent"),
            std::string::npos)
      << reply.status().ToString();
  EXPECT_EQ(client.retries(), 0u);
  EXPECT_EQ(client.giveups(), 1u);
}

}  // namespace
}  // namespace xia
