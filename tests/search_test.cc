#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "advisor/dag.h"
#include "advisor/enumeration.h"
#include "advisor/generalize.h"
#include "advisor/search_greedy.h"
#include "advisor/search_greedy_heuristic.h"
#include "advisor/search_topdown.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"

namespace xia {
namespace {

class SearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&db_, "xmark", 6, params, 42).ok());
    workload_ = MakeXMarkWorkload("xmark");
    optimizer_ = std::make_unique<Optimizer>(&db_, cost_model_);

    // Build a realistic candidate set the way the advisor does.
    Result<EnumerationResult> enumerated =
        EnumerateBasicCandidates(db_, workload_, &cache_);
    ASSERT_TRUE(enumerated.ok());
    candidates_ = GeneralizeCandidates(enumerated->candidates, db_,
                                       GeneralizeOptions());
    dag_ = GeneralizationDag::Build(candidates_, &cache_);
    evaluator_ = std::make_unique<ConfigurationEvaluator>(
        optimizer_.get(), &workload_, &base_catalog_, &candidates_, &cache_,
        /*account_update_cost=*/true);
  }

  double ChosenSize(const SearchResult& result) {
    return ConfigSizeBytes(candidates_, result.chosen);
  }

  Database db_;
  Workload workload_;
  Catalog base_catalog_;
  CostModel cost_model_;
  ContainmentCache cache_;
  std::vector<CandidateIndex> candidates_;
  GeneralizationDag dag_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<ConfigurationEvaluator> evaluator_;
};

constexpr double kBudget = 64.0 * 1024;

TEST_F(SearchTest, GreedyRespectsBudgetAndImproves) {
  SearchOptions options;
  options.space_budget_bytes = kBudget;
  Result<SearchResult> result = GreedySearch(evaluator_.get(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->total_size_bytes, kBudget);
  EXPECT_LE(ChosenSize(*result), kBudget);
  EXPECT_GT(result->benefit, 0.0);
  EXPECT_FALSE(result->chosen.empty());
  EXPECT_FALSE(result->trace.empty());
}

TEST_F(SearchTest, TraceEndsWithStatsSectionThenCounterLine) {
  SearchOptions options;
  options.space_budget_bytes = kBudget;
  Result<SearchResult> result = GreedySearch(evaluator_.get(), options);
  ASSERT_TRUE(result.ok());
  // Every search trace closes with the observability tail: a "stats:"
  // section rendering the evaluator's deterministic snapshot, then the
  // legacy cache counter line as the very last entry.
  const std::vector<std::string>& trace = result->trace;
  ASSERT_GE(trace.size(), 3u);
  EXPECT_EQ(trace.back(), result->counters.TraceLine());
  auto stats_it = std::find(trace.begin(), trace.end(), "stats:");
  ASSERT_NE(stats_it, trace.end());
  bool found_evaluations = false;
  for (auto it = stats_it + 1; it != trace.end() - 1; ++it) {
    if (it->find("advisor.evaluations = ") != std::string::npos) {
      found_evaluations = true;
    }
  }
  EXPECT_TRUE(found_evaluations);
}

TEST_F(SearchTest, GreedyHeuristicRespectsBudgetAndImproves) {
  SearchOptions options;
  options.space_budget_bytes = kBudget;
  Result<SearchResult> result =
      GreedyHeuristicSearch(evaluator_.get(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(ChosenSize(*result), kBudget);
  EXPECT_GT(result->benefit, 0.0);
}

TEST_F(SearchTest, HeuristicGuaranteesEveryIndexIsUsed) {
  // The paper's guarantee: every recommended index is used by at least
  // one workload query's best plan.
  SearchOptions options;
  options.space_budget_bytes = kBudget;
  Result<SearchResult> result =
      GreedyHeuristicSearch(evaluator_.get(), options);
  ASSERT_TRUE(result.ok());
  Result<ConfigurationEvaluator::Evaluation> eval =
      evaluator_->Evaluate(result->chosen);
  ASSERT_TRUE(eval.ok());
  for (int c : result->chosen) {
    EXPECT_TRUE(eval->used_candidates.count(c))
        << candidates_[static_cast<size_t>(c)].def.pattern.ToString()
        << " recommended but unused";
  }
}

TEST_F(SearchTest, PlainGreedyMayKeepUnusedButHeuristicIsNoWorse) {
  SearchOptions options;
  options.space_budget_bytes = kBudget;
  Result<SearchResult> plain = GreedySearch(evaluator_.get(), options);
  Result<SearchResult> heuristic =
      GreedyHeuristicSearch(evaluator_.get(), options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(heuristic.ok());
  // The heuristic never recommends a larger configuration for less
  // benefit: compare benefit-per-byte at equal budgets.
  EXPECT_GE(heuristic->benefit, 0.95 * plain->benefit);
  EXPECT_LE(ChosenSize(*heuristic), kBudget);
}

TEST_F(SearchTest, TopDownStartsAtRootsAndFits) {
  SearchOptions options;
  options.space_budget_bytes = kBudget;
  Result<SearchResult> result =
      TopDownSearch(dag_, evaluator_.get(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(ChosenSize(*result), kBudget);
  EXPECT_GT(result->benefit, 0.0);
  ASSERT_FALSE(result->trace.empty());
  EXPECT_NE(result->trace.front().find("DAG roots"), std::string::npos);
}

TEST_F(SearchTest, TopDownWithHugeBudgetKeepsRoots) {
  SearchOptions options;
  options.space_budget_bytes = 1e12;
  Result<SearchResult> result =
      TopDownSearch(dag_, evaluator_.get(), options);
  ASSERT_TRUE(result.ok());
  std::set<int> chosen(result->chosen.begin(), result->chosen.end());
  std::vector<int> root_list = dag_.Roots();
  std::set<int> roots(root_list.begin(), root_list.end());
  EXPECT_EQ(chosen, roots);
}

TEST_F(SearchTest, TopDownRecommendsMoreGeneralConfigThanGreedy) {
  // At a budget generous enough for top-down to stay near the DAG roots,
  // its configuration is at least as general (wildcard-rich) as greedy's,
  // which gravitates to the exact, smallest-per-benefit indexes.
  SearchOptions options;
  options.space_budget_bytes = 8.0 * kBudget;
  Result<SearchResult> greedy =
      GreedyHeuristicSearch(evaluator_.get(), options);
  Result<SearchResult> topdown =
      TopDownSearch(dag_, evaluator_.get(), options);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(topdown.ok());
  auto generality = [&](const SearchResult& r) {
    double total = 0;
    for (int c : r.chosen) {
      total += static_cast<double>(
          candidates_[static_cast<size_t>(c)].def.pattern.WildcardCount());
    }
    return r.chosen.empty() ? 0.0
                            : total / static_cast<double>(r.chosen.size());
  };
  EXPECT_GE(generality(*topdown), generality(*greedy));
}

TEST_F(SearchTest, TinyBudgetYieldsSmallOrEmptyConfig) {
  SearchOptions options;
  options.space_budget_bytes = 16;  // Essentially nothing fits.
  for (auto search : {&GreedySearch, &GreedyHeuristicSearch}) {
    Result<SearchResult> result = (*search)(evaluator_.get(), options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(ChosenSize(*result), options.space_budget_bytes);
  }
  Result<SearchResult> topdown =
      TopDownSearch(dag_, evaluator_.get(), options);
  ASSERT_TRUE(topdown.ok());
  EXPECT_LE(ChosenSize(*topdown), options.space_budget_bytes);
}

TEST_F(SearchTest, BiggerBudgetNeverHurts) {
  SearchOptions small;
  small.space_budget_bytes = 8.0 * 1024;
  SearchOptions large;
  large.space_budget_bytes = 512.0 * 1024;
  Result<SearchResult> small_result =
      GreedyHeuristicSearch(evaluator_.get(), small);
  Result<SearchResult> large_result =
      GreedyHeuristicSearch(evaluator_.get(), large);
  ASSERT_TRUE(small_result.ok());
  ASSERT_TRUE(large_result.ok());
  EXPECT_GE(large_result->benefit, small_result->benefit - 1e-9);
}

TEST_F(SearchTest, TraceStringJoinsLines) {
  SearchResult result;
  result.trace = {"one", "two"};
  EXPECT_EQ(result.TraceString(), "one\ntwo\n");
}

}  // namespace
}  // namespace xia
