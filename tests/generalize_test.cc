#include <gtest/gtest.h>

#include <set>

#include "advisor/generalize.h"
#include "xmldata/xmark_gen.h"
#include "xpath/containment.h"
#include "xpath/parser.h"

namespace xia {
namespace {

PathPattern P(const std::string& text) {
  Result<PathPattern> p = ParsePathPattern(text);
  EXPECT_TRUE(p.ok()) << text;
  return std::move(*p);
}

// --------------------------------------------------------------- Unify.

TEST(UnifyTest, SingleDifferingStep) {
  std::optional<PathPattern> u =
      UnifyPatterns(P("/regions/namerica/item/quantity"),
                    P("/regions/africa/item/quantity"));
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->ToString(), "/regions/*/item/quantity");
}

TEST(UnifyTest, WildcardAbsorbsName) {
  // The paper's second step: a generalized pattern plus a third query.
  std::optional<PathPattern> u =
      UnifyPatterns(P("/regions/*/item/quantity"),
                    P("/regions/samerica/item/price"));
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->ToString(), "/regions/*/item/*");
}

TEST(UnifyTest, IdenticalPatternsYieldNothing) {
  EXPECT_FALSE(UnifyPatterns(P("/a/b"), P("/a/b")).has_value());
  EXPECT_FALSE(UnifyPatterns(P("/a/*"), P("/a/*")).has_value());
}

TEST(UnifyTest, DifferentLengthsNotUnifiable) {
  EXPECT_FALSE(UnifyPatterns(P("/a/b"), P("/a/b/c")).has_value());
}

TEST(UnifyTest, DifferentAxesNotUnifiable) {
  EXPECT_FALSE(UnifyPatterns(P("/a/b"), P("/a//b")).has_value());
}

TEST(UnifyTest, AttributeKindMustAgree) {
  EXPECT_FALSE(UnifyPatterns(P("/a/@x"), P("/a/y")).has_value());
  std::optional<PathPattern> u = UnifyPatterns(P("/a/@x"), P("/a/@y"));
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->ToString(), "/a/@*");
}

TEST(UnifyTest, ResultContainsBothInputs) {
  PathPattern a = P("/x/one/y/two");
  PathPattern b = P("/x/uno/y/dos");
  std::optional<PathPattern> u = UnifyPatterns(a, b);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->ToString(), "/x/*/y/*");
  EXPECT_TRUE(PatternContains(*u, a));
  EXPECT_TRUE(PatternContains(*u, b));
}

// ----------------------------------------------------- GeneralizeCandidates.

class GeneralizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&db_, "xmark", 4, params, 42).ok());
  }

  CandidateIndex Cand(const std::string& pattern, ValueType type,
                      int source_query) {
    CandidateIndex c;
    c.def.collection = "xmark";
    c.def.pattern = P(pattern);
    c.def.type = type;
    c.source_queries = {source_query};
    c.stats = EstimateVirtualIndex(*db_.synopsis("xmark"), c.def,
                                   StorageConstants());
    return c;
  }

  static std::set<std::string> Patterns(
      const std::vector<CandidateIndex>& candidates) {
    std::set<std::string> out;
    for (const CandidateIndex& c : candidates) {
      out.insert(c.def.pattern.ToString() + "|" +
                 ValueTypeName(c.def.type));
    }
    return out;
  }

  Database db_;
};

TEST_F(GeneralizeTest, ReproducesPaperExampleChain) {
  std::vector<CandidateIndex> basics = {
      Cand("/site/regions/namerica/item/quantity", ValueType::kDouble, 0),
      Cand("/site/regions/africa/item/quantity", ValueType::kDouble, 1),
      Cand("/site/regions/samerica/item/price", ValueType::kDouble, 2),
  };
  std::vector<CandidateIndex> expanded =
      GeneralizeCandidates(basics, db_, GeneralizeOptions());
  std::set<std::string> patterns = Patterns(expanded);
  EXPECT_TRUE(patterns.count("/site/regions/*/item/quantity|DOUBLE"));
  EXPECT_TRUE(patterns.count("/site/regions/*/item/*|DOUBLE"));
  // Basics are preserved, in order, at the front.
  EXPECT_EQ(expanded[0].def.pattern.ToString(),
            "/site/regions/namerica/item/quantity");
  EXPECT_GE(expanded.size(), 5u);
}

TEST_F(GeneralizeTest, GeneratedCandidatesInheritSources) {
  std::vector<CandidateIndex> basics = {
      Cand("/site/regions/namerica/item/quantity", ValueType::kDouble, 0),
      Cand("/site/regions/africa/item/quantity", ValueType::kDouble, 1),
  };
  std::vector<CandidateIndex> expanded =
      GeneralizeCandidates(basics, db_, GeneralizeOptions());
  bool found = false;
  for (const CandidateIndex& c : expanded) {
    if (c.def.pattern.ToString() == "/site/regions/*/item/quantity") {
      found = true;
      EXPECT_TRUE(c.from_generalization);
      EXPECT_EQ(c.source_queries, (std::vector<int>{0, 1}));
      EXPECT_GT(c.stats.entries, 0.0);
      // The generalized index is larger than either parent.
      EXPECT_GT(c.stats.size_bytes, basics[0].stats.size_bytes);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(GeneralizeTest, TypesNeverMix) {
  std::vector<CandidateIndex> basics = {
      Cand("/site/regions/namerica/item/quantity", ValueType::kDouble, 0),
      Cand("/site/regions/africa/item/quantity", ValueType::kVarchar, 1),
  };
  std::vector<CandidateIndex> expanded =
      GeneralizeCandidates(basics, db_, GeneralizeOptions());
  // No unification across types: nothing generated.
  EXPECT_EQ(expanded.size(), 2u);
}

TEST_F(GeneralizeTest, CollectionsNeverMix) {
  ASSERT_TRUE(db_.CreateCollection("other").ok());
  ASSERT_TRUE(db_.LoadXml("other", "<site/>").ok());
  ASSERT_TRUE(db_.Analyze("other").ok());
  std::vector<CandidateIndex> basics = {
      Cand("/site/regions/namerica/item/quantity", ValueType::kDouble, 0),
  };
  CandidateIndex foreign =
      Cand("/site/regions/africa/item/quantity", ValueType::kDouble, 1);
  foreign.def.collection = "other";
  foreign.stats = EstimateVirtualIndex(*db_.synopsis("other"), foreign.def,
                                       StorageConstants());
  basics.push_back(foreign);
  std::vector<CandidateIndex> expanded =
      GeneralizeCandidates(basics, db_, GeneralizeOptions());
  EXPECT_EQ(expanded.size(), 2u);
}

TEST_F(GeneralizeTest, GenerationCapRespected) {
  // Many pairwise-unifiable patterns explode combinatorially; the cap
  // bounds the expansion.
  std::vector<CandidateIndex> basics;
  const std::string parts[] = {"a", "b", "c", "d", "e", "f"};
  int qi = 0;
  for (const std::string& x : parts) {
    for (const std::string& y : parts) {
      basics.push_back(
          Cand("/root/" + x + "/mid/" + y, ValueType::kVarchar, qi++));
    }
  }
  GeneralizeOptions options;
  options.max_generated = 10;
  std::vector<CandidateIndex> expanded =
      GeneralizeCandidates(basics, db_, options);
  EXPECT_LE(expanded.size(), basics.size() + 10);
}

TEST_F(GeneralizeTest, FixpointReachedWithinRounds) {
  std::vector<CandidateIndex> basics = {
      Cand("/site/regions/namerica/item/quantity", ValueType::kDouble, 0),
      Cand("/site/regions/africa/item/quantity", ValueType::kDouble, 1),
      Cand("/site/regions/samerica/item/price", ValueType::kDouble, 2),
      Cand("/site/regions/europe/item/payment", ValueType::kDouble, 3),
  };
  GeneralizeOptions many;
  many.max_rounds = 10;
  GeneralizeOptions few;
  few.max_rounds = 3;
  EXPECT_EQ(Patterns(GeneralizeCandidates(basics, db_, many)),
            Patterns(GeneralizeCandidates(basics, db_, few)));
}

TEST_F(GeneralizeTest, DescendantRuleOptIn) {
  std::vector<CandidateIndex> basics = {
      Cand("/site/regions/africa/item/quantity", ValueType::kDouble, 0),
  };
  GeneralizeOptions off;
  EXPECT_EQ(GeneralizeCandidates(basics, db_, off).size(), 1u);
  GeneralizeOptions on;
  on.enable_descendant_rule = true;
  std::vector<CandidateIndex> expanded =
      GeneralizeCandidates(basics, db_, on);
  std::set<std::string> patterns = Patterns(expanded);
  EXPECT_TRUE(patterns.count("//regions/africa/item/quantity|DOUBLE"));
}

TEST_F(GeneralizeTest, DisabledGeneralizationIsIdentity) {
  std::vector<CandidateIndex> basics = {
      Cand("/site/regions/namerica/item/quantity", ValueType::kDouble, 0),
      Cand("/site/regions/africa/item/quantity", ValueType::kDouble, 1),
  };
  GeneralizeOptions zero;
  zero.max_rounds = 0;
  EXPECT_EQ(GeneralizeCandidates(basics, db_, zero).size(), 2u);
}

}  // namespace
}  // namespace xia
