#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/path_synopsis.h"
#include "storage/statistics.h"
#include "xpath/parser.h"

namespace xia {
namespace {

PathPattern P(const std::string& text) {
  Result<PathPattern> p = ParsePathPattern(text);
  EXPECT_TRUE(p.ok()) << text;
  return std::move(*p);
}

class SynopsisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateCollection("c").ok());
    // Two documents with the paper's region structure.
    ASSERT_TRUE(db_.LoadXml("c", R"(
      <regions>
        <africa>
          <item id="a1"><quantity>5</quantity><price>10</price></item>
          <item id="a2"><quantity>3</quantity><price>20</price></item>
        </africa>
        <namerica>
          <item id="n1"><quantity>8</quantity><price>30</price></item>
        </namerica>
      </regions>)").ok());
    ASSERT_TRUE(db_.LoadXml("c", R"(
      <regions>
        <africa>
          <item id="a3"><quantity>1</quantity><price>40</price></item>
        </africa>
        <samerica>
          <item id="s1"><quantity>9</quantity><price>abc</price></item>
        </samerica>
      </regions>)").ok());
    ASSERT_TRUE(db_.Analyze("c").ok());
    synopsis_ = db_.synopsis("c");
    ASSERT_NE(synopsis_, nullptr);
  }

  Database db_;
  const PathSynopsis* synopsis_ = nullptr;
};

TEST_F(SynopsisTest, CountsAreExactForLinearPaths) {
  EXPECT_EQ(synopsis_->EstimateCount(P("/regions")), 2.0);
  EXPECT_EQ(synopsis_->EstimateCount(P("/regions/africa")), 2.0);
  EXPECT_EQ(synopsis_->EstimateCount(P("/regions/africa/item")), 3.0);
  EXPECT_EQ(synopsis_->EstimateCount(P("/regions/*/item")), 5.0);
  EXPECT_EQ(synopsis_->EstimateCount(P("//item")), 5.0);
  EXPECT_EQ(synopsis_->EstimateCount(P("//item/quantity")), 5.0);
  EXPECT_EQ(synopsis_->EstimateCount(P("//item/@id")), 5.0);
  EXPECT_EQ(synopsis_->EstimateCount(P("/regions/europe/item")), 0.0);
}

TEST_F(SynopsisTest, DistinctPathsCounted) {
  // regions, africa, namerica, samerica, item x3 (one per region),
  // quantity x3, price x3, @id x3 = 16.
  EXPECT_EQ(synopsis_->NumPaths(), 16u);
  // 2 regions roots + 4 region elements + 5 items + 15 item children.
  EXPECT_EQ(synopsis_->TotalNodes(), 26u);
}

TEST_F(SynopsisTest, EnumeratePathsContainsFullPaths) {
  auto paths = synopsis_->EnumeratePaths();
  bool found = false;
  for (const auto& [path, count] : paths) {
    if (path == "/regions/africa/item/quantity") {
      found = true;
      EXPECT_EQ(count, 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SynopsisTest, AggregateValuesTracksNumerics) {
  AggValueStats q = synopsis_->AggregateValues(P("//item/quantity"));
  EXPECT_EQ(q.node_count, 5u);
  EXPECT_EQ(q.value_count, 5u);
  EXPECT_EQ(q.numeric_count, 5u);
  EXPECT_EQ(q.min_num, 1.0);
  EXPECT_EQ(q.max_num, 9.0);
  EXPECT_EQ(q.sample.size(), 5u);

  // One price is non-numeric ("abc").
  AggValueStats p = synopsis_->AggregateValues(P("//item/price"));
  EXPECT_EQ(p.value_count, 5u);
  EXPECT_EQ(p.numeric_count, 4u);
}

TEST_F(SynopsisTest, StructuralNodesHaveNoValues) {
  AggValueStats items = synopsis_->AggregateValues(P("//item"));
  EXPECT_EQ(items.node_count, 5u);
  EXPECT_EQ(items.value_count, 0u);
}

TEST_F(SynopsisTest, IntersectionCount) {
  // //item ∩ /regions/africa/item = the 3 africa items.
  EXPECT_EQ(
      synopsis_->EstimateIntersectionCount(P("//item"),
                                           P("/regions/africa/item")),
      3.0);
  // Disjoint patterns share nothing.
  EXPECT_EQ(synopsis_->EstimateIntersectionCount(P("//quantity"),
                                                 P("//price")),
            0.0);
}

TEST_F(SynopsisTest, MatchReturnsPerPathNodes) {
  std::vector<const SynopsisNode*> nodes = synopsis_->Match(P("//item"));
  EXPECT_EQ(nodes.size(), 3u);  // One synopsis node per region's item path.
  uint64_t total = 0;
  for (const SynopsisNode* n : nodes) total += n->count;
  EXPECT_EQ(total, 5u);
}

TEST_F(SynopsisTest, PathStringReconstructsPath) {
  std::vector<const SynopsisNode*> nodes =
      synopsis_->Match(P("/regions/africa/item/quantity"));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0]->PathString(db_.names()),
            "/regions/africa/item/quantity");
}

// ----------------------------------------------------------- Statistics.

TEST(StatisticsTest, SelectivityFromSample) {
  AggValueStats stats;
  for (int i = 1; i <= 10; ++i) stats.sample.push_back(std::to_string(i));
  stats.value_count = 10;
  // 5 of 10 values > 5; Laplace: (5 + 0.5) / 11.
  EXPECT_NEAR(EstimateSelectivity(stats, CompareOp::kGt, "5"), 5.5 / 11,
              1e-9);
  // Equality on one value: (1 + 0.5) / 11.
  EXPECT_NEAR(EstimateSelectivity(stats, CompareOp::kEq, "7"), 1.5 / 11,
              1e-9);
  // Never exactly zero or one.
  EXPECT_GT(EstimateSelectivity(stats, CompareOp::kGt, "100"), 0.0);
  EXPECT_LT(EstimateSelectivity(stats, CompareOp::kLe, "100"), 1.0);
}

TEST(StatisticsTest, SelectivityDefaults) {
  AggValueStats empty;
  EXPECT_EQ(EstimateSelectivity(empty, CompareOp::kGt, "5"), 0.1);
  EXPECT_EQ(EstimateSelectivity(empty, CompareOp::kExists, ""), 1.0);
}

TEST(StatisticsTest, EquiDepthHistogram) {
  AggValueStats stats;
  for (int i = 1; i <= 100; ++i) stats.sample.push_back(std::to_string(i));
  stats.value_count = 1000;  // Scaled 10x from the sample.
  Histogram hist = BuildEquiDepthHistogram(stats, 4);
  ASSERT_EQ(hist.buckets.size(), 4u);
  uint64_t total = 0;
  for (const HistogramBucket& b : hist.buckets) {
    EXPECT_LE(b.lo, b.hi);
    total += b.count;
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(hist.buckets[0].lo, 1.0);
  EXPECT_EQ(hist.buckets[3].hi, 100.0);
  // Equi-depth: equal counts.
  EXPECT_EQ(hist.buckets[0].count, hist.buckets[3].count);
}

TEST(StatisticsTest, HistogramUpperBoundaryIsInclusive) {
  AggValueStats stats;
  for (int i = 1; i <= 100; ++i) stats.sample.push_back(std::to_string(i));
  stats.value_count = 1000;
  Histogram hist = BuildEquiDepthHistogram(stats, 4);
  ASSERT_EQ(hist.buckets.size(), 4u);
  // Probing exactly the last bucket's upper bound is INSIDE the histogram:
  // the buckets are closed intervals, so the max sample value must land in
  // the last bucket and cover the full mass. The historic drift treated hi
  // as exclusive and dropped the final bucket for this probe.
  double max_v = hist.buckets.back().hi;
  EXPECT_EQ(hist.BucketIndexFor(max_v), 3);
  EXPECT_DOUBLE_EQ(hist.FractionLE(max_v), 1.0);
  // Above the last hi: still 1.0, and no containing bucket.
  EXPECT_DOUBLE_EQ(hist.FractionLE(max_v + 1.0), 1.0);
  EXPECT_EQ(hist.BucketIndexFor(max_v + 1.0), -1);
}

TEST(StatisticsTest, HistogramLowerBoundaryAndBelow) {
  AggValueStats stats;
  for (int i = 1; i <= 100; ++i) stats.sample.push_back(std::to_string(i));
  stats.value_count = 1000;
  Histogram hist = BuildEquiDepthHistogram(stats, 4);
  ASSERT_EQ(hist.buckets.size(), 4u);
  double min_v = hist.buckets.front().lo;
  // At the first lo: inside bucket 0, fraction is the interpolated sliver
  // at the bucket's left edge (zero width covered).
  EXPECT_EQ(hist.BucketIndexFor(min_v), 0);
  EXPECT_DOUBLE_EQ(hist.FractionLE(min_v), 0.0);
  // Strictly below the first bucket: outside, fraction 0.
  EXPECT_EQ(hist.BucketIndexFor(min_v - 1.0), -1);
  EXPECT_DOUBLE_EQ(hist.FractionLE(min_v - 1.0), 0.0);
}

TEST(StatisticsTest, HistogramSharedBoundaryLowerBucketWins) {
  // Force adjacent buckets to share a boundary value: equi-depth split of
  // {1,1,2,2} into 2 buckets gives [1,1] and [2,2]; of {1,2,2,3} gives
  // [1,2] and [2,3] where 2 is both a hi and the next lo.
  AggValueStats stats;
  stats.sample = {"1", "2", "2", "3"};
  stats.value_count = 4;
  Histogram hist = BuildEquiDepthHistogram(stats, 2);
  ASSERT_EQ(hist.buckets.size(), 2u);
  ASSERT_EQ(hist.buckets[0].hi, 2.0);
  ASSERT_EQ(hist.buckets[1].lo, 2.0);
  EXPECT_EQ(hist.BucketIndexFor(2.0), 0);  // Lower bucket wins the tie.
  // FractionLE at the shared boundary covers all of bucket 0 (probe == hi).
  EXPECT_DOUBLE_EQ(hist.FractionLE(2.0), 0.5);
}

TEST(StatisticsTest, HistogramSingleValueBucketInterpolation) {
  // A zero-width bucket ([5,5]) must count fully when probed at its value,
  // not divide by zero.
  AggValueStats stats;
  stats.sample = {"5", "5", "5", "5"};
  stats.value_count = 4;
  Histogram hist = BuildEquiDepthHistogram(stats, 2);
  ASSERT_FALSE(hist.buckets.empty());
  EXPECT_DOUBLE_EQ(hist.FractionLE(5.0), 1.0);
  EXPECT_EQ(hist.BucketIndexFor(5.0), 0);
}

TEST(StatisticsTest, HistogramEmptyProbes) {
  Histogram empty;
  EXPECT_EQ(empty.BucketIndexFor(1.0), -1);
  EXPECT_DOUBLE_EQ(empty.FractionLE(1.0), 0.0);
}

TEST(StatisticsTest, HistogramIgnoresNonNumerics) {
  AggValueStats stats;
  stats.sample = {"a", "b", "3", "1", "2"};
  stats.value_count = 5;
  Histogram hist = BuildEquiDepthHistogram(stats, 10);
  EXPECT_EQ(hist.buckets.size(), 3u);
  EXPECT_FALSE(hist.ToString().empty());
}

TEST(StatisticsTest, HistogramEmptyForNoNumerics) {
  AggValueStats stats;
  stats.sample = {"x", "y"};
  EXPECT_TRUE(BuildEquiDepthHistogram(stats, 4).buckets.empty());
}

TEST(SynopsisReservoirTest, SampleCapHolds) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  std::string xml = "<root>";
  for (int i = 0; i < 500; ++i) {
    xml += "<v>" + std::to_string(i) + "</v>";
  }
  xml += "</root>";
  ASSERT_TRUE(db.LoadXml("c", xml).ok());
  ASSERT_TRUE(db.Analyze("c").ok());
  AggValueStats stats = db.synopsis("c")->AggregateValues(P("/root/v"));
  EXPECT_EQ(stats.value_count, 500u);
  EXPECT_EQ(stats.sample.size(), 128u);  // Reservoir cap.
  EXPECT_EQ(stats.min_num, 0.0);
  EXPECT_EQ(stats.max_num, 499.0);
}

}  // namespace
}  // namespace xia
