#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workload/workload_io.h"
#include "workload/xmark_queries.h"

namespace xia {
namespace {

constexpr const char* kSample = R"(# training workload
query Q1 3 for $i in doc("xmark")/site/regions/africa/item where $i/quantity > 5 return $i/name

query Q2 1.5 select * from xmark where xmlexists('$d/site/people/person[address/country = "Germany"]')
update insert xmark 10 /site/open_auctions/open_auction/bidder
update delete xmark 2.5 /site/closed_auctions/closed_auction
)";

TEST(WorkloadIoTest, ParsesQueriesAndUpdates) {
  Result<Workload> w = ParseWorkloadText(kSample);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  ASSERT_EQ(w->size(), 2u);
  EXPECT_EQ(w->queries()[0].id, "Q1");
  EXPECT_EQ(w->queries()[0].weight, 3.0);
  EXPECT_EQ(w->queries()[0].normalized.collection, "xmark");
  EXPECT_EQ(w->queries()[1].id, "Q2");
  EXPECT_EQ(w->queries()[1].weight, 1.5);
  EXPECT_EQ(w->queries()[1].language, QueryLanguage::kSqlXml);
  ASSERT_EQ(w->updates().size(), 2u);
  EXPECT_EQ(w->updates()[0].kind, UpdateOp::Kind::kInsert);
  EXPECT_EQ(w->updates()[0].weight, 10.0);
  EXPECT_EQ(w->updates()[0].target.ToString(),
            "/site/open_auctions/open_auction/bidder");
  EXPECT_EQ(w->updates()[1].kind, UpdateOp::Kind::kDelete);
}

TEST(WorkloadIoTest, CommentsAndBlanksIgnored) {
  Result<Workload> w = ParseWorkloadText(
      "\n# only comments\n\n   \n# another\n");
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->size(), 0u);
}

TEST(WorkloadIoTest, RoundTripsThroughSerialize) {
  Result<Workload> original = ParseWorkloadText(kSample);
  ASSERT_TRUE(original.ok());
  std::string serialized = SerializeWorkload(*original);
  Result<Workload> reparsed = ParseWorkloadText(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->size(), original->size());
  for (size_t i = 0; i < original->size(); ++i) {
    EXPECT_EQ(reparsed->queries()[i].id, original->queries()[i].id);
    EXPECT_EQ(reparsed->queries()[i].weight, original->queries()[i].weight);
    EXPECT_EQ(reparsed->queries()[i].normalized.ToString(),
              original->queries()[i].normalized.ToString());
  }
  ASSERT_EQ(reparsed->updates().size(), original->updates().size());
  EXPECT_EQ(reparsed->updates()[0].target.ToString(),
            original->updates()[0].target.ToString());
}

TEST(WorkloadIoTest, BuiltInWorkloadRoundTrips) {
  Workload xmark = MakeXMarkWorkload("xmark");
  AddXMarkUpdates(&xmark, "xmark", 1.0);
  Result<Workload> reparsed = ParseWorkloadText(SerializeWorkload(xmark));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->size(), xmark.size());
  EXPECT_EQ(reparsed->updates().size(), xmark.updates().size());
}

TEST(WorkloadIoTest, Rejections) {
  EXPECT_FALSE(ParseWorkloadText("bogus directive").ok());
  EXPECT_FALSE(ParseWorkloadText("query Q1 notanumber for ...").ok());
  EXPECT_FALSE(ParseWorkloadText("query Q1 2").ok());  // Missing text.
  EXPECT_FALSE(ParseWorkloadText("query Q1 2 not a query").ok());
  EXPECT_FALSE(
      ParseWorkloadText("update replace xmark 1 /a").ok());  // Bad kind.
  EXPECT_FALSE(ParseWorkloadText("update insert xmark 1 no-slash").ok());
  EXPECT_FALSE(ParseWorkloadText("update insert xmark 0 /a").ok());
}

TEST(WorkloadIoTest, FileSaveAndLoad) {
  Result<Workload> original = ParseWorkloadText(kSample);
  ASSERT_TRUE(original.ok());
  std::string path = ::testing::TempDir() + "/xia_workload_test.txt";
  ASSERT_TRUE(SaveWorkloadFile(*original, path).ok());
  Result<Workload> loaded = LoadWorkloadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), original->size());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadWorkloadFile("/nonexistent/nope.txt").ok());
}

}  // namespace
}  // namespace xia
