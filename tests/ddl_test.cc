#include <gtest/gtest.h>

#include "advisor/analysis.h"
#include "index/ddl.h"
#include "xpath/parser.h"

namespace xia {
namespace {

TEST(DdlTest, ParsesCanonicalStatement) {
  Result<IndexDefinition> def = ParseIndexDdl(
      "CREATE INDEX idx_q ON xmark(doc) GENERATE KEY USING XMLPATTERN "
      "'/site/regions/africa/item/quantity' AS SQL DOUBLE");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->name, "idx_q");
  EXPECT_EQ(def->collection, "xmark");
  EXPECT_EQ(def->pattern.ToString(), "/site/regions/africa/item/quantity");
  EXPECT_EQ(def->type, ValueType::kDouble);
}

TEST(DdlTest, ParsesVarcharWithLengthAndSemicolon) {
  Result<IndexDefinition> def = ParseIndexDdl(
      "CREATE INDEX i1 ON orders(doc) GENERATE KEY USING XMLPATTERN "
      "'//Order/@Side' AS SQL VARCHAR(64);");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->type, ValueType::kVarchar);
  EXPECT_EQ(def->pattern.ToString(), "//Order/@Side");
}

TEST(DdlTest, CaseInsensitiveKeywordsOptionalColumn) {
  Result<IndexDefinition> def = ParseIndexDdl(
      "create index I on C generate key using xmlpattern '//*' as sql "
      "varchar");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->pattern.ToString(), "//*");
  EXPECT_EQ(def->type, ValueType::kVarchar);
}

TEST(DdlTest, RoundTripsDdlString) {
  IndexDefinition original;
  original.name = "rt";
  original.collection = "c";
  for (const std::string pattern :
       {"/a/b/c", "//item/*", "/site/regions/*/item/@id"}) {
    for (ValueType type : {ValueType::kVarchar, ValueType::kDouble}) {
      Result<PathPattern> p = ParsePathPattern(pattern);
      ASSERT_TRUE(p.ok());
      original.pattern = *p;
      original.type = type;
      Result<IndexDefinition> reparsed = ParseIndexDdl(original.DdlString());
      ASSERT_TRUE(reparsed.ok()) << original.DdlString();
      EXPECT_TRUE(*reparsed == original);
      EXPECT_EQ(reparsed->name, original.name);
    }
  }
}

TEST(DdlTest, Rejections) {
  EXPECT_FALSE(ParseIndexDdl("DROP INDEX i").ok());
  EXPECT_FALSE(ParseIndexDdl("CREATE INDEX ON c ...").ok());
  EXPECT_FALSE(
      ParseIndexDdl("CREATE INDEX i ON c GENERATE KEY USING XMLPATTERN "
                    "'/a' AS SQL INTEGER")
          .ok());
  EXPECT_FALSE(
      ParseIndexDdl("CREATE INDEX i ON c GENERATE KEY USING XMLPATTERN "
                    "'not-a-path' AS SQL DOUBLE")
          .ok());
  EXPECT_FALSE(
      ParseIndexDdl("CREATE INDEX i ON c GENERATE KEY USING XMLPATTERN "
                    "'/a' AS SQL DOUBLE trailing")
          .ok());
  EXPECT_FALSE(
      ParseIndexDdl("CREATE INDEXES i ON c GENERATE KEY USING XMLPATTERN "
                    "'/a' AS SQL DOUBLE")
          .ok());
}

TEST(DdlTest, ScriptParsesCommentsAndBlanks) {
  Result<std::vector<IndexDefinition>> defs = ParseDdlScript(R"(
-- recommended configuration
CREATE INDEX a ON c(doc) GENERATE KEY USING XMLPATTERN '/x/y' AS SQL DOUBLE;

CREATE INDEX b ON c(doc) GENERATE KEY USING XMLPATTERN '//z' AS SQL VARCHAR(64);
)");
  ASSERT_TRUE(defs.ok()) << defs.status().ToString();
  ASSERT_EQ(defs->size(), 2u);
  EXPECT_EQ((*defs)[0].name, "a");
  EXPECT_EQ((*defs)[1].name, "b");
}

TEST(DdlTest, ScriptErrorCarriesLineNumber) {
  Result<std::vector<IndexDefinition>> defs = ParseDdlScript(
      "CREATE INDEX a ON c(doc) GENERATE KEY USING XMLPATTERN '/x' AS SQL "
      "DOUBLE;\nbogus line\n");
  ASSERT_FALSE(defs.ok());
  EXPECT_NE(defs.status().message().find("line 2"), std::string::npos);
}

TEST(DdlTest, ConfigurationScriptRoundTrips) {
  std::vector<IndexDefinition> config;
  for (const std::string pattern : {"/a/b", "//k", "/a/*/@id"}) {
    IndexDefinition def;
    def.name = "idx_" + std::to_string(config.size());
    def.collection = "coll";
    Result<PathPattern> p = ParsePathPattern(pattern);
    ASSERT_TRUE(p.ok());
    def.pattern = *p;
    def.type = ValueType::kVarchar;
    config.push_back(std::move(def));
  }
  std::string script = ConfigurationDdlScript(config);
  Result<std::vector<IndexDefinition>> reparsed = ParseDdlScript(script);
  ASSERT_TRUE(reparsed.ok()) << script;
  ASSERT_EQ(reparsed->size(), config.size());
  for (size_t i = 0; i < config.size(); ++i) {
    EXPECT_TRUE((*reparsed)[i] == config[i]);
  }
}

}  // namespace
}  // namespace xia
