// xia::server — wire framing, the concurrent advisor service, and its
// failure modes. Covers frame round-trips under split and coalesced
// reads, oversized-frame poisoning, concurrent sessions sharing one
// what-if plan cache with bit-identical advise replies, deadline-expired
// advises returning flagged best-so-far results, BUSY fast-rejection
// under both admission bounds, and the server.accept / server.read
// failpoint sweep (an injected fault drops one client, never the
// server), plus connection governance: mid-frame stall timeouts, idle
// reaping, health/ready probes, and the drain → GOAWAY → clean-exit
// protocol. The whole file runs under ASan+UBSan and TSan in CI.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/session.h"
#include "storage/storage_engine.h"
#include "xmldata/xmark_gen.h"

namespace xia {
namespace server {
namespace {

// ---------------------------------------------------------------------
// Framing.

TEST(FrameDecoderTest, RoundTripSingleFrame) {
  FrameDecoder decoder;
  std::string frame = EncodeFrame("advise 64");
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + 9);
  ASSERT_TRUE(decoder.Feed(frame).ok());
  std::optional<std::string> payload = decoder.Next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "advise 64");
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameDecoderTest, SplitReadsReassemble) {
  // Feed one byte at a time — a frame must survive any read segmentation
  // the kernel produces.
  FrameDecoder decoder;
  std::string frame = EncodeFrame("stats");
  for (size_t i = 0; i < frame.size(); ++i) {
    ASSERT_TRUE(decoder.Feed(frame.data() + i, 1).ok());
    if (i + 1 < frame.size()) {
      EXPECT_FALSE(decoder.Next().has_value()) << "completed early at " << i;
    }
  }
  std::optional<std::string> payload = decoder.Next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "stats");
}

TEST(FrameDecoderTest, CoalescedFramesAllPop) {
  // Several frames in one read: Next() must drain them in order.
  FrameDecoder decoder;
  std::string wire =
      EncodeFrame("ping") + EncodeFrame("") + EncodeFrame("quit");
  ASSERT_TRUE(decoder.Feed(wire).ok());
  std::optional<std::string> first = decoder.Next();
  std::optional<std::string> second = decoder.Next();
  std::optional<std::string> third = decoder.Next();
  ASSERT_TRUE(first && second && third);
  EXPECT_EQ(*first, "ping");
  EXPECT_EQ(*second, "");
  EXPECT_EQ(*third, "quit");
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameDecoderTest, OversizedFramePoisonsPermanently) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  std::string ok_frame = EncodeFrame("small");
  ASSERT_TRUE(decoder.Feed(ok_frame).ok());
  ASSERT_TRUE(decoder.Next().has_value());

  std::string big_frame = EncodeFrame(std::string(17, 'x'));
  Status fed = decoder.Feed(big_frame);
  EXPECT_FALSE(fed.ok());
  EXPECT_TRUE(decoder.poisoned());
  // Poisoning is permanent: even a well-formed frame is rejected, and
  // nothing can be popped — framing is no longer trusted.
  EXPECT_FALSE(decoder.Feed(ok_frame).ok());
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameDecoderTest, HeaderAloneDoesNotComplete) {
  FrameDecoder decoder;
  std::string frame = EncodeFrame("abc");
  ASSERT_TRUE(decoder.Feed(frame.data(), kFrameHeaderBytes).ok());
  EXPECT_FALSE(decoder.Next().has_value());
  ASSERT_TRUE(
      decoder.Feed(frame.data() + kFrameHeaderBytes, frame.size() -
                                                         kFrameHeaderBytes)
          .ok());
  EXPECT_EQ(decoder.Next().value_or(""), "abc");
}

TEST(FrameDecoderTest, ZeroLengthFrameIsAValidEmptyPayload) {
  // A zero-length frame is well-formed on the wire (the server answers
  // it with "ERR empty request", it is not a protocol violation).
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(EncodeFrame("")).ok());
  std::optional<std::string> payload = decoder.Next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "");
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_EQ(decoder.pending_bytes(), 0u);
  // The connection keeps working afterwards.
  ASSERT_TRUE(decoder.Feed(EncodeFrame("ping")).ok());
  EXPECT_EQ(decoder.Next().value_or(""), "ping");
}

TEST(FrameDecoderTest, ExactMaxSizeFrameAcceptedOneByteOverPoisons) {
  // The limit is inclusive: length == max_frame_bytes is the largest
  // legal payload; length == max + 1 poisons.
  FrameDecoder at_limit(/*max_frame_bytes=*/8);
  ASSERT_TRUE(at_limit.Feed(EncodeFrame("12345678")).ok());
  EXPECT_EQ(at_limit.Next().value_or(""), "12345678");
  EXPECT_FALSE(at_limit.poisoned());

  FrameDecoder over_limit(/*max_frame_bytes=*/8);
  EXPECT_FALSE(over_limit.Feed(EncodeFrame("123456789")).ok());
  EXPECT_TRUE(over_limit.poisoned());
}

TEST(ResponseTest, StatusLineClassification) {
  EXPECT_EQ(ClassifyResponse(OkResponse("")), ResponseKind::kOk);
  EXPECT_EQ(ClassifyResponse(OkResponse("body\nlines")), ResponseKind::kOk);
  EXPECT_EQ(ClassifyResponse(ErrResponse("bad verb")), ResponseKind::kErr);
  EXPECT_EQ(ClassifyResponse(BusyResponse("advise capacity")),
            ResponseKind::kBusy);
  EXPECT_EQ(ClassifyResponse(GoawayResponse("server draining")),
            ResponseKind::kGoaway);
  EXPECT_EQ(ClassifyResponse("GOAWAY"), ResponseKind::kGoaway);
  EXPECT_EQ(ClassifyResponse("definitely not a status line"),
            ResponseKind::kMalformed);
  // Empty payloads and empty status lines are malformed, never OK.
  EXPECT_EQ(ClassifyResponse(""), ResponseKind::kMalformed);
  EXPECT_EQ(ClassifyResponse("\nbody after empty line"),
            ResponseKind::kMalformed);
  // Keyword must match exactly: prefixes of real keywords are not them.
  EXPECT_EQ(ClassifyResponse("OKAY"), ResponseKind::kMalformed);
  EXPECT_EQ(ClassifyResponse("ERR"), ResponseKind::kMalformed);
}

// ---------------------------------------------------------------------
// The server proper. Each test binds an ephemeral loopback port.

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::DisarmAll(); }
  void TearDown() override {
    server_.reset();  // RequestStop + Wait before shared_ dies.
    fp::DisarmAll();
  }

  void Preload(int docs) {
    ASSERT_TRUE(
        PopulateXMark(&shared_.db, "xmark", docs, XMarkParams(), 42).ok());
  }

  void StartServer(ServerOptions options = {}) {
    options.tcp_port = 0;  // Ephemeral; read back via port().
    server_ = std::make_unique<Server>(&shared_, options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    ASSERT_GT(server_->port(), 0);
  }

  BlockingClient Connect() {
    Result<BlockingClient> client = BlockingClient::ConnectTcp(server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  SharedState shared_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingAndHelpAndQuit) {
  StartServer();
  BlockingClient client = Connect();

  Result<std::string> pong = client.Call("ping");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, OkResponse("pong\n"));

  Result<std::string> help = client.Call("help");
  ASSERT_TRUE(help.ok());
  EXPECT_EQ(ClassifyResponse(*help), ResponseKind::kOk);
  EXPECT_NE(help->find("advise"), std::string::npos);

  Result<std::string> bye = client.Call("quit");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(ClassifyResponse(*bye), ResponseKind::kOk);
  // The server closes the session after quit.
  EXPECT_FALSE(client.Receive().ok());
}

TEST_F(ServerTest, UnknownVerbStillHandled) {
  StartServer();
  BlockingClient client = Connect();
  Result<std::string> reply = client.Call("frobnicate");
  ASSERT_TRUE(reply.ok());
  // Unknown verbs are shell-compatible advisory text, not a dropped
  // connection — the next request on the same session works.
  EXPECT_NE(reply->find("unknown command"), std::string::npos);
  Result<std::string> pong = client.Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, OkResponse("pong\n"));
}

TEST_F(ServerTest, ConcurrentSessionsShareCostCacheBitIdentically) {
  Preload(3);
  ServerOptions options;
  options.workers = 4;
  options.max_connections = 4;
  options.max_inflight_advises = 4;
  StartServer(options);

  // Four sessions build the same workload and advise concurrently. The
  // replies must be byte-identical: the shared plan cache may change who
  // computes a plan, never what the plan is.
  constexpr int kSessions = 4;
  std::vector<std::string> replies(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([this, i, &replies] {
      BlockingClient client = Connect();
      Result<std::string> loaded = client.Call("workload xmark");
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      Result<std::string> advised = client.Call("advise 64");
      ASSERT_TRUE(advised.ok()) << advised.status().ToString();
      replies[static_cast<size_t>(i)] = std::move(*advised);
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 1; i < kSessions; ++i) {
    EXPECT_EQ(replies[static_cast<size_t>(i)], replies[0])
        << "session " << i << " diverged";
  }
  EXPECT_EQ(ClassifyResponse(replies[0]), ResponseKind::kOk);
  EXPECT_NE(replies[0].find("Recommended configuration"), std::string::npos);
  // Proof the cache was actually shared: four identical advises can only
  // miss each distinct plan once, so hits must have accrued.
  EXPECT_GT(shared_.what_if_cache.stats().hits, 0u);
}

TEST_F(ServerTest, DeadlineExpiredAdviseReturnsFlaggedBestSoFar) {
  Preload(3);
  StartServer();

  // Make every what-if optimization sleep so a 1ms budget is guaranteed
  // to fire mid-search (the deadline_test idiom); kOk = latency only.
  fp::FailSpec slow;
  slow.code = StatusCode::kOk;
  slow.latency_ms = 5;
  fp::ScopedFailpoint armed("advisor.whatif.optimize", slow);

  BlockingClient client = Connect();
  ASSERT_TRUE(client.Call("workload xmark").ok());
  Result<std::string> reply = client.Call("advise --budget-ms 1 64");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  // Anytime contract over the wire: an expired budget is still an OK
  // reply carrying the best-so-far configuration, flagged as degraded.
  EXPECT_EQ(ClassifyResponse(*reply), ResponseKind::kOk);
  EXPECT_NE(reply->find("stop_reason: deadline"), std::string::npos)
      << *reply;
  EXPECT_NE(reply->find("Recommended configuration"), std::string::npos);
}

TEST_F(ServerTest, AdviseDecomposeFlagFlowsThroughDispatcher) {
  Preload(3);
  StartServer();
  BlockingClient client = Connect();
  ASSERT_TRUE(client.Call("workload xmark").ok());

  // --decompose switches the session's advise to atomic-benefit scoring;
  // the report announces the mode and the pricing outcome.
  Result<std::string> decomposed = client.Call("advise --decompose 64");
  ASSERT_TRUE(decomposed.ok()) << decomposed.status().ToString();
  EXPECT_EQ(ClassifyResponse(*decomposed), ResponseKind::kOk);
  EXPECT_NE(decomposed->find("Decomposed scoring:"), std::string::npos)
      << *decomposed;
  EXPECT_NE(decomposed->find("Recommended configuration"), std::string::npos);

  // The flags are mutually exclusive...
  Result<std::string> conflict = client.Call("advise --decompose --exact 64");
  ASSERT_TRUE(conflict.ok());
  EXPECT_NE(conflict->find("mutually exclusive"), std::string::npos);

  // ... and a plain advise on the same session goes back to exact mode
  // (the sticky session option is re-derived per request).
  Result<std::string> exact = client.Call("advise 64");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(ClassifyResponse(*exact), ResponseKind::kOk);
  EXPECT_EQ(exact->find("Decomposed scoring:"), std::string::npos) << *exact;
}

TEST_F(ServerTest, AdviseBusyWhenNoCapacity) {
  Preload(3);
  ServerOptions options;
  options.max_inflight_advises = 0;  // Every advise over capacity.
  StartServer(options);

  BlockingClient client = Connect();
  ASSERT_TRUE(client.Call("workload xmark").ok());
  Result<std::string> reply = client.Call("advise 64");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(ClassifyResponse(*reply), ResponseKind::kBusy) << *reply;
  // BUSY is per-request, not per-connection: light verbs still serve.
  Result<std::string> pong = client.Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, OkResponse("pong\n"));
}

TEST_F(ServerTest, ConnectionBusyWhenFull) {
  ServerOptions options;
  options.workers = 1;
  options.max_connections = 1;
  StartServer(options);

  BlockingClient first = Connect();
  // A round-trip guarantees the first connection is admitted before the
  // second one races the accept loop.
  ASSERT_TRUE(first.Call("ping").ok());

  BlockingClient second = Connect();
  // Over-admission gets exactly one BUSY frame, then close.
  Result<std::string> busy = second.Receive();
  ASSERT_TRUE(busy.ok()) << busy.status().ToString();
  EXPECT_EQ(ClassifyResponse(*busy), ResponseKind::kBusy);
  EXPECT_FALSE(second.Receive().ok());

  // The admitted connection is unaffected.
  Result<std::string> pong = first.Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, OkResponse("pong\n"));
}

TEST_F(ServerTest, AcceptFailpointDropsOneClientNotTheServer) {
  StartServer();

  {
    fp::FailSpec spec;  // kInternal, every hit.
    spec.max_trips = 1;
    fp::ScopedFailpoint armed("server.accept", spec);
    // The connection is accepted by the kernel, then the injected accept
    // fault closes it before a session starts: the client sees EOF on
    // its first read, never a hang.
    BlockingClient dropped = Connect();
    EXPECT_FALSE(dropped.Call("ping").ok());
  }

  // The server survived and serves the next client.
  BlockingClient client = Connect();
  Result<std::string> pong = client.Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, OkResponse("pong\n"));
}

TEST_F(ServerTest, ReadFailpointDropsConnectionMidSession) {
  StartServer();

  {
    fp::FailSpec spec;
    spec.max_trips = 1;
    fp::ScopedFailpoint armed("server.read", spec);
    // The read gate is checked before each blocking read, so arming
    // before the connection exists makes the very first read trip: the
    // injected fault closes the connection without a reply.
    BlockingClient victim = Connect();
    EXPECT_FALSE(victim.Call("ping").ok());
  }

  BlockingClient fresh = Connect();
  Result<std::string> pong = fresh.Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, OkResponse("pong\n"));
}

TEST_F(ServerTest, OversizedRequestFrameGetsErrThenClose) {
  ServerOptions options;
  options.max_frame_bytes = 64;
  StartServer(options);

  BlockingClient client = Connect();
  ASSERT_TRUE(client.Call("ping").ok());
  // 65-byte command: the client-side encoder is happy, the server-side
  // decoder poisons. One ERR frame comes back, then the close.
  Result<std::string> reply = client.Call(std::string(65, 'x'));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(ClassifyResponse(*reply), ResponseKind::kErr);
  EXPECT_FALSE(client.Receive().ok());
}

TEST_F(ServerTest, StopCancelsInflightAdviseAndConnectionsDrain) {
  Preload(3);
  StartServer();

  // Park an advise behind the latency failpoint, stop the server while
  // it runs: the shutdown token turns the search into an anytime wind-
  // down, and Wait() must join without the advise completing naturally.
  fp::FailSpec slow;
  slow.code = StatusCode::kOk;
  slow.latency_ms = 20;
  fp::ScopedFailpoint armed("advisor.whatif.optimize", slow);

  BlockingClient client = Connect();
  ASSERT_TRUE(client.Call("workload xmark").ok());
  ASSERT_TRUE(client.Send("advise 256").ok());
  // Give the request a moment to enter the advisor.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->RequestStop();
  server_->Wait();
  EXPECT_TRUE(server_->shutdown_token().Cancelled());
  EXPECT_EQ(server_->active_connections(), 0);
  server_.reset();
}

// ---------------------------------------------------------------------
// Connection governance: timeouts, idle reaping, health/ready/drain.

TEST_F(ServerTest, EmptyRequestGetsErrAndConnectionSurvives) {
  StartServer();
  BlockingClient client = Connect();
  Result<std::string> reply = client.Call("");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(ClassifyResponse(*reply), ResponseKind::kErr);
  EXPECT_NE(reply->find("empty request"), std::string::npos);
  // Whitespace-only is the same well-formed-but-empty case.
  Result<std::string> blank = client.Call("   ");
  ASSERT_TRUE(blank.ok());
  EXPECT_EQ(ClassifyResponse(*blank), ResponseKind::kErr);
  Result<std::string> pong = client.Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, OkResponse("pong\n"));
}

TEST_F(ServerTest, StalledMidFrameClientIsDroppedAndWorkerFreed) {
  ServerOptions options;
  options.workers = 1;  // A stalled client would pin the ONLY worker.
  options.max_connections = 2;
  options.io_timeout_ms = 100;
  StartServer(options);
  uint64_t timeouts_before =
      obs::Registry().TakeSnapshot().counter("server.timeouts");

  BlockingClient staller = Connect();
  ASSERT_TRUE(staller.Call("ping").ok());  // Session is live.
  // Stall mid-frame: deliver 6 bytes of a frame whose header announces
  // 100, then go silent past --io-timeout-ms.
  std::string torn = EncodeFrame(std::string(100, 'y'));
  ASSERT_TRUE(staller.SendRaw(torn.substr(0, 6)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // The server dropped the stalled connection (read returns EOF) ...
  EXPECT_FALSE(staller.Receive().ok());
  // ... freed the single worker for other clients ...
  BlockingClient next = Connect();
  Result<std::string> pong = next.Call("ping");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, OkResponse("pong\n"));
  // ... and accounted for it.
  EXPECT_GE(obs::Registry().TakeSnapshot().counter("server.timeouts"),
            timeouts_before + 1);
}

TEST_F(ServerTest, IdleConnectionIsReapedActiveOneIsNot) {
  ServerOptions options;
  options.io_timeout_ms = 50;
  options.idle_timeout_ms = 150;
  StartServer(options);
  uint64_t reaped_before =
      obs::Registry().TakeSnapshot().counter("server.reaped_idle");

  BlockingClient idle = Connect();
  ASSERT_TRUE(idle.Call("ping").ok());
  BlockingClient active = Connect();
  ASSERT_TRUE(active.Call("ping").ok());

  // Stay under the idle bound on one connection, let the other rot.
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    Result<std::string> pong = active.Call("ping");
    ASSERT_TRUE(pong.ok()) << "active connection must survive: "
                           << pong.status().ToString();
  }
  // > 400ms idle >> 150ms bound: the idle connection is gone.
  EXPECT_FALSE(idle.Receive().ok());
  EXPECT_GE(obs::Registry().TakeSnapshot().counter("server.reaped_idle"),
            reaped_before + 1);
}

TEST_F(ServerTest, HealthAndReadyAnswerAndTrackServerState) {
  StartServer();
  BlockingClient client = Connect();

  Result<std::string> health = client.Call("health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(*health, OkResponse("alive"));

  Result<std::string> ready = client.Call("ready");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(*ready, OkResponse("ready"));

  // Not-ready (e.g. during recovery): health stays green, ready flips.
  server_->SetReady(false);
  Result<std::string> still_alive = client.Call("health");
  ASSERT_TRUE(still_alive.ok());
  EXPECT_EQ(*still_alive, OkResponse("alive"));
  Result<std::string> not_ready = client.Call("ready");
  ASSERT_TRUE(not_ready.ok());
  EXPECT_EQ(ClassifyResponse(*not_ready), ResponseKind::kErr);
  EXPECT_NE(not_ready->find("recovering"), std::string::npos);
  server_->SetReady(true);
  Result<std::string> again = client.Call("ready");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, OkResponse("ready"));
}

TEST_F(ServerTest, DrainRefusesNewWorkWithGoawayThenExitsCleanly) {
  StartServer();
  uint64_t goaway_before =
      obs::Registry().TakeSnapshot().counter("server.goaway");

  BlockingClient operator_conn = Connect();
  ASSERT_TRUE(operator_conn.Call("ping").ok());

  Result<std::string> drained = operator_conn.Call("drain");
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(ClassifyResponse(*drained), ResponseKind::kOk);
  EXPECT_TRUE(server_->draining());
  EXPECT_FALSE(server_->ready());

  // Observation verbs still answer on the existing connection...
  Result<std::string> stats = operator_conn.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ClassifyResponse(*stats), ResponseKind::kOk);
  // ... real work gets GOAWAY and the connection closes after it.
  Result<std::string> refused = operator_conn.Call("ping");
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(ClassifyResponse(*refused), ResponseKind::kGoaway);
  EXPECT_FALSE(operator_conn.Receive().ok());

  // A brand-new connection gets one GOAWAY frame, then close.
  BlockingClient late = Connect();
  Result<std::string> turned_away = late.Receive();
  ASSERT_TRUE(turned_away.ok()) << turned_away.status().ToString();
  EXPECT_EQ(ClassifyResponse(*turned_away), ResponseKind::kGoaway);
  EXPECT_FALSE(late.Receive().ok());

  EXPECT_GE(obs::Registry().TakeSnapshot().counter("server.goaway"),
            goaway_before + 2);

  // Drain converged: no live connections; shutdown is clean.
  for (int i = 0; i < 100 && server_->active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->active_connections(), 0);
  server_->RequestStop();
  server_->Wait();
  server_.reset();
}

// ---------------------------------------------------------------------
// Dispatcher-level regressions: budget parsing and the db verb. These
// drive CommandDispatcher::Execute directly — no socket needed.

std::string Dispatch(SharedState* shared, ClientSession* session,
                     const std::string& line) {
  CommandDispatcher dispatcher(shared);
  std::ostringstream out;
  dispatcher.Execute(line, session, out);
  return out.str();
}

TEST(DispatcherBudgetTest, JunkBudgetIsRefusedNotHalfParsed) {
  SharedState shared;
  ClientSession session(shared);
  // std::stod("12abc") silently yields 12 and drops "abc" — the old
  // parse advised with that half-read budget. It must be refused whole.
  EXPECT_NE(Dispatch(&shared, &session, "advise 12abc")
                .find("bad budget '12abc'"),
            std::string::npos);
  EXPECT_NE(Dispatch(&shared, &session, "advise nan").find("bad budget"),
            std::string::npos);
  EXPECT_NE(Dispatch(&shared, &session, "advise inf").find("bad budget"),
            std::string::npos);
  EXPECT_NE(Dispatch(&shared, &session, "advise -5").find("bad budget"),
            std::string::npos);
}

TEST(DispatcherBudgetTest, BudgetMsRequiresNonNegativeInteger) {
  SharedState shared;
  ClientSession session(shared);
  const char* kErr = "--budget-ms needs a non-negative integer";
  EXPECT_NE(Dispatch(&shared, &session, "advise --budget-ms abc 64")
                .find(kErr),
            std::string::npos);
  EXPECT_NE(Dispatch(&shared, &session, "advise --budget-ms 2.5 64")
                .find(kErr),
            std::string::npos);
  EXPECT_NE(Dispatch(&shared, &session, "advise --budget-ms -1 64")
                .find(kErr),
            std::string::npos);
  EXPECT_NE(Dispatch(&shared, &session, "advise --budget-ms").find(kErr),
            std::string::npos);
  // `1e3` used to be read by `args >> int64` as 1 with "e3" left over to
  // be misparsed as the space budget; it is exactly 1000 and must pass
  // the budget parse (the reply then complains about the empty
  // workload, not the budget).
  EXPECT_EQ(Dispatch(&shared, &session, "advise --budget-ms 1e3 64")
                .find("budget"),
            std::string::npos);
}

TEST(DispatcherDbTest, DbVerbWithoutEngineReportsMemoryOnly) {
  SharedState shared;
  ClientSession session(shared);
  EXPECT_TRUE(CommandDispatcher::IsExclusiveVerb("db"));
  EXPECT_NE(Dispatch(&shared, &session, "db status").find("persistence: off"),
            std::string::npos);
  EXPECT_NE(
      Dispatch(&shared, &session, "db checkpoint").find("persistence: off"),
      std::string::npos);
  EXPECT_NE(Dispatch(&shared, &session, "db frob").find("usage: db"),
            std::string::npos);
}

TEST(DispatcherDbTest, LoadAnalyzeAreWalLoggedAndSurviveKill) {
  namespace fs = std::filesystem;
  fs::path scratch = fs::temp_directory_path() / "xia_server_db_test";
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  fs::path xml = scratch / "doc.xml";
  {
    std::ofstream file(xml);
    file << "<site><item><price>7</price></item></site>";
  }
  const std::string db_dir = (scratch / "db").string();
  storage::StorageOptions no_sync;
  no_sync.sync = false;

  auto open_into = [&](SharedState* shared) {
    Result<std::unique_ptr<storage::StorageEngine>> opened =
        storage::StorageEngine::Open(
            db_dir, &shared->db, &shared->catalog, &shared->buffer_pool,
            shared->default_options.cost_model.storage, no_sync);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    shared->engine = std::move(*opened);
  };

  std::string fingerprint;
  {
    SharedState shared;
    open_into(&shared);
    ClientSession session(shared);
    EXPECT_NE(Dispatch(&shared, &session, "load docs " + xml.string())
                  .find("loaded 1 document"),
              std::string::npos);
    EXPECT_NE(Dispatch(&shared, &session, "analyze docs")
                  .find("statistics rebuilt"),
              std::string::npos);
    std::string status = Dispatch(&shared, &session, "db status");
    EXPECT_NE(status.find("persistence: on"), std::string::npos);
    // create-collection + add-document + analyze = LSNs 1..3.
    EXPECT_NE(status.find("next_lsn: 4"), std::string::npos);
    fingerprint =
        storage::StorageEngine::StateFingerprint(shared.db, shared.catalog);
    // Kill: drop the engine without Close(); the WAL is all that's left.
  }
  {
    SharedState shared;
    open_into(&shared);
    EXPECT_EQ(shared.engine->recovery().wal_records_replayed, 3u);
    EXPECT_EQ(
        storage::StorageEngine::StateFingerprint(shared.db, shared.catalog),
        fingerprint);
    ASSERT_NE(shared.db.GetCollection("docs"), nullptr);
    ClientSession session(shared);
    EXPECT_NE(Dispatch(&shared, &session, "db checkpoint")
                  .find("checkpointed (epoch 2"),
              std::string::npos);
  }
  {
    // After the verb-driven checkpoint a reopen replays nothing — the
    // state comes entirely from the page file.
    SharedState shared;
    open_into(&shared);
    EXPECT_TRUE(shared.engine->recovery().opened_existing);
    EXPECT_EQ(shared.engine->recovery().wal_records_replayed, 0u);
    EXPECT_GT(shared.engine->recovery().pages_read, 0u);
    EXPECT_EQ(
        storage::StorageEngine::StateFingerprint(shared.db, shared.catalog),
        fingerprint);
  }
  fs::remove_all(scratch);
}

}  // namespace
}  // namespace server
}  // namespace xia
