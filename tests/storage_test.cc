#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/node_store.h"
#include "xpath/parser.h"

namespace xia {
namespace {

TEST(CollectionTest, AddAssignsSequentialIds) {
  Database db;
  Result<Collection*> coll = db.CreateCollection("c");
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE(db.LoadXml("c", "<a><b>1</b></a>").ok());
  ASSERT_TRUE(db.LoadXml("c", "<a><b>2</b></a>").ok());
  EXPECT_EQ((*coll)->num_docs(), 2u);
  EXPECT_EQ((*coll)->doc(0).id(), 0);
  EXPECT_EQ((*coll)->doc(1).id(), 1);
  EXPECT_EQ((*coll)->num_nodes(), 6u);
  EXPECT_GT((*coll)->ByteSize(), 0u);
}

TEST(DatabaseTest, DuplicateCollectionRejected) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  Result<Collection*> dup = db.CreateCollection("c");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, LoadIntoMissingCollectionFails) {
  Database db;
  EXPECT_EQ(db.LoadXml("ghost", "<a/>").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, LoadBadXmlFails) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  EXPECT_EQ(db.LoadXml("c", "<a><b></a>").code(), StatusCode::kParseError);
}

TEST(DatabaseTest, AnalyzeBuildsSynopsis) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.LoadXml("c", "<a><b>1</b><b>2</b></a>").ok());
  EXPECT_EQ(db.synopsis("c"), nullptr);
  ASSERT_TRUE(db.Analyze("c").ok());
  const PathSynopsis* synopsis = db.synopsis("c");
  ASSERT_NE(synopsis, nullptr);
  EXPECT_EQ(synopsis->TotalNodes(), 3u);
  EXPECT_EQ(db.Analyze("ghost").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, CollectionNamesSorted) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("zeta").ok());
  ASSERT_TRUE(db.CreateCollection("alpha").ok());
  EXPECT_EQ(db.CollectionNames(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(NodeStoreTest, PatternOverCollection) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.LoadXml("c", "<a><b>1</b></a>").ok());
  ASSERT_TRUE(db.LoadXml("c", "<a><b>2</b><b>3</b></a>").ok());
  Result<PathPattern> p = ParsePathPattern("/a/b");
  ASSERT_TRUE(p.ok());
  std::vector<NodeRef> refs = EvaluatePatternOverCollection(
      *db.GetCollection("c"), db.names(), *p);
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0].doc, 0);
  EXPECT_EQ(refs[1].doc, 1);
  EXPECT_EQ(refs[2].doc, 1);
}

TEST(NodeStoreTest, ParsedPathOverCollection) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.LoadXml("c", "<a><b><v>5</v></b></a>").ok());
  ASSERT_TRUE(db.LoadXml("c", "<a><b><v>50</v></b></a>").ok());
  Result<ParsedPath> p = ParsePathExpr("/a/b[v > 10]");
  ASSERT_TRUE(p.ok());
  std::vector<NodeRef> refs = EvaluateParsedPathOverCollection(
      *db.GetCollection("c"), db.names(), *p);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].doc, 1);
}

TEST(NodeRefTest, Ordering) {
  NodeRef a{0, 5};
  NodeRef b{0, 6};
  NodeRef c{1, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (NodeRef{0, 5}));
}

}  // namespace
}  // namespace xia
