#include <gtest/gtest.h>

#include <algorithm>

#include "exec/executor.h"
#include "exec/operators.h"
#include "index/index_builder.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "xmldata/xmark_gen.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xia {
namespace {

PathPattern P(const std::string& text) {
  Result<PathPattern> p = ParsePathPattern(text);
  EXPECT_TRUE(p.ok()) << text;
  return std::move(*p);
}

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&db_, "xmark", 8, params, 42).ok());
  }

  Query Parse(const std::string& text) {
    Result<Query> q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(*q);
  }

  /// Builds and registers a physical index.
  void Materialize(const std::string& name, const std::string& pattern,
                   ValueType type) {
    IndexDefinition def;
    def.name = name;
    def.collection = "xmark";
    def.pattern = P(pattern);
    def.type = type;
    Result<PathIndex> built = BuildIndex(db_, def);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE(catalog_
                    .AddPhysical(
                        std::make_shared<PathIndex>(std::move(*built)),
                        cost_model_.storage)
                    .ok());
  }

  ExecResult MustRun(const QueryPlan& plan) {
    Executor executor(&db_, &catalog_, cost_model_);
    Result<ExecResult> result = executor.Execute(plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(*result);
  }

  Database db_;
  Catalog catalog_;
  CostModel cost_model_;
  ContainmentCache cache_;
};

constexpr const char* kQuery =
    "for $i in doc(\"xmark\")/site/regions/africa/item "
    "where $i/quantity > 5 return $i/name";

// ------------------------------------------------------------- Operators.

TEST_F(ExecutorTest, VerifyNodePathChecksRootPath) {
  const Document& doc = db_.GetCollection("xmark")->doc(0);
  // Find an africa item node and verify it against several patterns.
  Result<ParsedPath> path = ParsePathExpr("/site/regions/africa/item");
  ASSERT_TRUE(path.ok());
  std::vector<NodeIndex> nodes =
      EvaluateParsedPath(doc, db_.names(), *path);
  ASSERT_FALSE(nodes.empty());
  EXPECT_TRUE(VerifyNodePath(doc, db_.names(), nodes[0],
                             P("/site/regions/africa/item")));
  EXPECT_TRUE(VerifyNodePath(doc, db_.names(), nodes[0],
                             P("/site/regions/*/item")));
  EXPECT_TRUE(VerifyNodePath(doc, db_.names(), nodes[0], P("//item")));
  EXPECT_FALSE(VerifyNodePath(doc, db_.names(), nodes[0],
                              P("/site/regions/europe/item")));
}

TEST_F(ExecutorTest, DocSatisfiesPredicateAgreesWithEvaluator) {
  Query q = Parse(kQuery);
  const QueryPredicate& pred = q.normalized.predicates[0];
  const Collection& coll = *db_.GetCollection("xmark");
  for (const Document& doc : coll.docs()) {
    bool expected = false;
    for (NodeIndex n : EvaluatePattern(doc, db_.names(), pred.pattern)) {
      if (CompareValues(pred.op, doc.TextValue(n), pred.literal)) {
        expected = true;
        break;
      }
    }
    EXPECT_EQ(DocSatisfiesPredicate(doc, db_.names(), pred), expected);
  }
}

// ------------------------------------------------- Scan vs index parity.

TEST_F(ExecutorTest, IndexPlanReturnsSameResultsAsScan) {
  Optimizer opt(&db_, cost_model_);
  Catalog empty;
  Query q = Parse(kQuery);

  Result<QueryPlan> scan_plan = opt.Optimize(q, empty, &cache_);
  ASSERT_TRUE(scan_plan.ok());
  ASSERT_FALSE(scan_plan->access.use_index);
  ExecResult scan = MustRun(*scan_plan);

  Materialize("q_idx", "/site/regions/africa/item/quantity",
              ValueType::kDouble);
  Result<QueryPlan> idx_plan = opt.Optimize(q, catalog_, &cache_);
  ASSERT_TRUE(idx_plan.ok());
  ASSERT_TRUE(idx_plan->access.use_index);
  ExecResult indexed = MustRun(*idx_plan);

  EXPECT_EQ(scan.nodes, indexed.nodes);
  EXPECT_EQ(scan.docs_matched, indexed.docs_matched);
  EXPECT_GT(scan.nodes.size(), 0u);
}

TEST_F(ExecutorTest, GeneralIndexWithVerifyGivesSameResults) {
  Optimizer opt(&db_, cost_model_);
  Catalog empty;
  Query q = Parse(kQuery);
  Result<QueryPlan> scan_plan = opt.Optimize(q, empty, &cache_);
  ASSERT_TRUE(scan_plan.ok());
  ExecResult scan = MustRun(*scan_plan);

  Materialize("gen_idx", "/site/regions/*/item/*", ValueType::kDouble);
  Result<QueryPlan> idx_plan = opt.Optimize(q, catalog_, &cache_);
  ASSERT_TRUE(idx_plan.ok());
  ASSERT_TRUE(idx_plan->access.use_index);
  EXPECT_TRUE(idx_plan->access.needs_verify);
  ExecResult indexed = MustRun(*idx_plan);
  EXPECT_EQ(scan.nodes, indexed.nodes);
}

TEST_F(ExecutorTest, EqProbeParity) {
  Optimizer opt(&db_, cost_model_);
  Catalog empty;
  Query q = Parse(
      "for $i in doc(\"xmark\")/site/regions/europe/item "
      "where $i/payment = \"Creditcard\" return $i");
  Result<QueryPlan> scan_plan = opt.Optimize(q, empty, &cache_);
  ASSERT_TRUE(scan_plan.ok());
  ExecResult scan = MustRun(*scan_plan);

  Materialize("pay_idx", "/site/regions/europe/item/payment",
              ValueType::kVarchar);
  Result<QueryPlan> idx_plan = opt.Optimize(q, catalog_, &cache_);
  ASSERT_TRUE(idx_plan.ok());
  ASSERT_TRUE(idx_plan->access.use_index);
  EXPECT_EQ(idx_plan->access.use, MatchUse::kSargableEq);
  ExecResult indexed = MustRun(*idx_plan);
  EXPECT_EQ(scan.nodes, indexed.nodes);
}

TEST_F(ExecutorTest, MultiPredicateParity) {
  Optimizer opt(&db_, cost_model_);
  Catalog empty;
  Query q = Parse(
      "for $i in doc(\"xmark\")/site/regions/africa/item "
      "where $i/quantity > 3 and $i/payment = \"Cash\" return $i");
  Result<QueryPlan> scan_plan = opt.Optimize(q, empty, &cache_);
  ASSERT_TRUE(scan_plan.ok());
  ExecResult scan = MustRun(*scan_plan);

  Materialize("q_idx", "/site/regions/africa/item/quantity",
              ValueType::kDouble);
  Result<QueryPlan> idx_plan = opt.Optimize(q, catalog_, &cache_);
  ASSERT_TRUE(idx_plan.ok());
  ASSERT_TRUE(idx_plan->access.use_index);
  ExecResult indexed = MustRun(*idx_plan);
  EXPECT_EQ(scan.nodes, indexed.nodes);
}

TEST_F(ExecutorTest, SqlXmlParity) {
  Optimizer opt(&db_, cost_model_);
  Catalog empty;
  Query q = Parse(
      "select * from xmark where "
      "xmlexists('$d/site/people/person[profile/@income >= 80000]')");
  Result<QueryPlan> scan_plan = opt.Optimize(q, empty, &cache_);
  ASSERT_TRUE(scan_plan.ok());
  ExecResult scan = MustRun(*scan_plan);

  Materialize("inc_idx", "/site/people/person/profile/@income",
              ValueType::kDouble);
  Result<QueryPlan> idx_plan = opt.Optimize(q, catalog_, &cache_);
  ASSERT_TRUE(idx_plan.ok());
  ASSERT_TRUE(idx_plan->access.use_index);
  ExecResult indexed = MustRun(*idx_plan);
  EXPECT_EQ(scan.nodes, indexed.nodes);
}

// -------------------------------------------------------- Accounting.

TEST_F(ExecutorTest, IndexReadsFewerSimulatedPages) {
  Optimizer opt(&db_, cost_model_);
  Catalog empty;
  Query q = Parse(kQuery);
  Result<QueryPlan> scan_plan = opt.Optimize(q, empty, &cache_);
  ASSERT_TRUE(scan_plan.ok());
  ExecResult scan = MustRun(*scan_plan);

  Materialize("q_idx", "/site/regions/africa/item/quantity",
              ValueType::kDouble);
  Result<QueryPlan> idx_plan = opt.Optimize(q, catalog_, &cache_);
  ASSERT_TRUE(idx_plan.ok());
  ExecResult indexed = MustRun(*idx_plan);
  EXPECT_LT(indexed.simulated_page_reads, scan.simulated_page_reads);
  EXPECT_LT(indexed.nodes_examined, scan.nodes_examined);
}

TEST_F(ExecutorTest, VirtualIndexPlanCannotExecute) {
  IndexDefinition def;
  def.name = "virt";
  def.collection = "xmark";
  def.pattern = P("/site/regions/africa/item/quantity");
  def.type = ValueType::kDouble;
  VirtualIndexStats stats = EstimateVirtualIndex(
      *db_.synopsis("xmark"), def, cost_model_.storage);
  Catalog with_virtual;
  ASSERT_TRUE(with_virtual.AddVirtual(def, stats).ok());
  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> plan = opt.Optimize(Parse(kQuery), with_virtual, &cache_);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->access.use_index);
  Executor executor(&db_, &catalog_, cost_model_);
  Result<ExecResult> run = executor.Execute(*plan);
  EXPECT_FALSE(run.ok());  // "virt" is not in catalog_ as physical.
}

TEST_F(ExecutorTest, ReturnProjectionCollectsReturnNodes) {
  Optimizer opt(&db_, cost_model_);
  Catalog empty;
  Query q = Parse(kQuery);  // return $i/name
  Result<QueryPlan> plan = opt.Optimize(q, empty, &cache_);
  ASSERT_TRUE(plan.ok());
  ExecResult run = MustRun(*plan);
  ASSERT_FALSE(run.returned.empty());
  // Projected nodes are <name> elements inside qualifying documents.
  for (const NodeRef& ref : run.returned) {
    const Document& doc = db_.GetCollection("xmark")->doc(ref.doc);
    EXPECT_EQ(db_.names().NameOf(doc.node(ref.node).name), "name");
  }
  // Same projection whether executed via scan or index.
  Materialize("q_idx", "/site/regions/africa/item/quantity",
              ValueType::kDouble);
  Result<QueryPlan> idx_plan = opt.Optimize(q, catalog_, &cache_);
  ASSERT_TRUE(idx_plan.ok());
  ASSERT_TRUE(idx_plan->access.use_index);
  ExecResult idx_run = MustRun(*idx_plan);
  EXPECT_EQ(run.returned, idx_run.returned);
}

TEST_F(ExecutorTest, RenderResultsEmitsXmlFragments) {
  Optimizer opt(&db_, cost_model_);
  Catalog empty;
  Query q = Parse(kQuery);
  Result<QueryPlan> plan = opt.Optimize(q, empty, &cache_);
  ASSERT_TRUE(plan.ok());
  ExecResult run = MustRun(*plan);
  std::string rendered = RenderResults(db_, "xmark", run, 5);
  EXPECT_NE(rendered.find("<name>"), std::string::npos);
  // Truncation notice appears when there are more results than shown.
  if (run.returned.size() > 5) {
    EXPECT_NE(rendered.find("more)"), std::string::npos);
  }
  EXPECT_EQ(RenderResults(db_, "ghost", run, 5), "");
}

TEST_F(ExecutorTest, NoReturnsMeansEmptyProjection) {
  Optimizer opt(&db_, cost_model_);
  Catalog empty;
  Query q = Parse(
      "select * from xmark where "
      "xmlexists('$d/site/regions/africa/item[quantity > 5]')");
  Result<QueryPlan> plan = opt.Optimize(q, empty, &cache_);
  ASSERT_TRUE(plan.ok());
  ExecResult run = MustRun(*plan);
  EXPECT_TRUE(run.returned.empty());
  EXPECT_FALSE(run.nodes.empty());
  // RenderResults falls back to the driving nodes.
  EXPECT_NE(RenderResults(db_, "xmark", run, 2).find("<item"),
            std::string::npos);
}

TEST_F(ExecutorTest, ScanCountsAllNodes) {
  Optimizer opt(&db_, cost_model_);
  Catalog empty;
  Result<QueryPlan> plan = opt.Optimize(Parse(kQuery), empty, &cache_);
  ASSERT_TRUE(plan.ok());
  ExecResult result = MustRun(*plan);
  EXPECT_EQ(result.nodes_examined,
            db_.GetCollection("xmark")->num_nodes());
  EXPECT_GT(result.wall_micros, 0.0);
}

}  // namespace
}  // namespace xia
