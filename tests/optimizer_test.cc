#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "xmldata/xmark_gen.h"
#include "xpath/parser.h"

namespace xia {
namespace {

PathPattern P(const std::string& text) {
  Result<PathPattern> p = ParsePathPattern(text);
  EXPECT_TRUE(p.ok()) << text;
  return std::move(*p);
}

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&db_, "xmark", 10, params, 42).ok());
    synopsis_ = db_.synopsis("xmark");
    ASSERT_NE(synopsis_, nullptr);
  }

  Query Parse(const std::string& text) {
    Result<Query> q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(*q);
  }

  void AddVirtual(const std::string& name, const std::string& pattern,
                  ValueType type) {
    IndexDefinition def;
    def.name = name;
    def.collection = "xmark";
    def.pattern = P(pattern);
    def.type = type;
    VirtualIndexStats stats =
        EstimateVirtualIndex(*synopsis_, def, cost_model_.storage);
    ASSERT_TRUE(catalog_.AddVirtual(std::move(def), stats).ok());
  }

  Database db_;
  const PathSynopsis* synopsis_ = nullptr;
  Catalog catalog_;
  CostModel cost_model_;
  ContainmentCache cache_;
};

constexpr const char* kQuantityQuery =
    "for $i in doc(\"xmark\")/site/regions/africa/item "
    "where $i/quantity > 5 return $i/name";

// -------------------------------------------------------------- CostModel.

TEST(CostModelTest, ScanScalesWithSize) {
  CostModel cm;
  EXPECT_LT(cm.CollectionScanCost(10000, 100),
            cm.CollectionScanCost(1000000, 10000));
}

TEST(CostModelTest, IndexScanCheaperForSelectiveProbe) {
  CostModel cm;
  VirtualIndexStats stats;
  stats.entries = 10000;
  stats.leaf_pages = 50;
  stats.height = 2;
  double selective = cm.IndexScanCost(stats, 0.01, 100, false);
  double full = cm.IndexScanCost(stats, 1.0, 10000, false);
  EXPECT_LT(selective, full);
  // Verification adds CPU cost.
  EXPECT_LT(cm.IndexScanCost(stats, 0.01, 100, false),
            cm.IndexScanCost(stats, 0.01, 100, true));
}

TEST(CostModelTest, PagesRoundUp) {
  CostModel cm;
  EXPECT_EQ(cm.Pages(1.0), 1.0);
  EXPECT_EQ(cm.Pages(4096.0), 1.0);
  EXPECT_EQ(cm.Pages(4097.0), 2.0);
}

// ------------------------------------------------------------ Cardinality.

TEST_F(OptimizerTest, CardinalityMatchesSynopsis) {
  CardinalityEstimator card(synopsis_);
  // 10 docs x 6 items in africa per doc.
  EXPECT_EQ(card.PatternCount(P("/site/regions/africa/item")), 60.0);
  EXPECT_EQ(card.PatternCount(P("/site/regions/*/item")), 360.0);
}

TEST_F(OptimizerTest, SelectivityBetweenZeroAndOne) {
  CardinalityEstimator card(synopsis_);
  Query q = Parse(kQuantityQuery);
  double sel = card.PredicateSelectivity(q.normalized.predicates[0]);
  EXPECT_GT(sel, 0.0);
  EXPECT_LT(sel, 1.0);
  // quantity in [1,10]: > 5 should be roughly half.
  EXPECT_NEAR(sel, 0.5, 0.25);
  double query_card = card.QueryCardinality(q.normalized);
  EXPECT_GT(query_card, 0.0);
  EXPECT_LT(query_card, 60.0);
}

// -------------------------------------------------------------- Optimizer.

TEST_F(OptimizerTest, EmptyCatalogMeansCollectionScan) {
  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> plan =
      opt.Optimize(Parse(kQuantityQuery), catalog_, &cache_);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->access.use_index);
  EXPECT_GT(plan->total_cost, 0.0);
  EXPECT_EQ(plan->residual_predicates.size(), 1u);
}

TEST_F(OptimizerTest, PicksMatchingIndexWhenCheaper) {
  AddVirtual("q_idx", "/site/regions/africa/item/quantity",
             ValueType::kDouble);
  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> plan =
      opt.Optimize(Parse(kQuantityQuery), catalog_, &cache_);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->access.use_index);
  EXPECT_EQ(plan->access.index_def.name, "q_idx");
  EXPECT_EQ(plan->access.use, MatchUse::kSargableRange);
  EXPECT_FALSE(plan->access.needs_verify);  // Exact pattern.
  EXPECT_TRUE(plan->residual_predicates.empty());
}

TEST_F(OptimizerTest, IndexPlanIsCheaperThanScanPlan) {
  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> scan =
      opt.Optimize(Parse(kQuantityQuery), catalog_, &cache_);
  AddVirtual("q_idx", "/site/regions/africa/item/quantity",
             ValueType::kDouble);
  Result<QueryPlan> indexed =
      opt.Optimize(Parse(kQuantityQuery), catalog_, &cache_);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(indexed.ok());
  EXPECT_LT(indexed->total_cost, scan->total_cost);
  // Orders of magnitude, as the paper promises for selective predicates.
  EXPECT_GT(scan->total_cost / indexed->total_cost, 10.0);
}

TEST_F(OptimizerTest, ExactIndexBeatsGeneralIndex) {
  AddVirtual("exact", "/site/regions/africa/item/quantity",
             ValueType::kDouble);
  AddVirtual("general", "/site/regions/*/item/*", ValueType::kDouble);
  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> plan =
      opt.Optimize(Parse(kQuantityQuery), catalog_, &cache_);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->access.use_index);
  EXPECT_EQ(plan->access.index_def.name, "exact");
}

TEST_F(OptimizerTest, GeneralIndexStillBeatsScan) {
  AddVirtual("general", "/site/regions/*/item/quantity",
             ValueType::kDouble);
  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> plan =
      opt.Optimize(Parse(kQuantityQuery), catalog_, &cache_);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->access.use_index);
  EXPECT_TRUE(plan->access.needs_verify);  // More general than the query.
}

TEST_F(OptimizerTest, UnservedPredicatesStayResidual) {
  AddVirtual("q_idx", "/site/regions/africa/item/quantity",
             ValueType::kDouble);
  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> plan = opt.Optimize(
      Parse("for $i in doc(\"xmark\")/site/regions/africa/item "
            "where $i/quantity > 5 and $i/payment = \"Cash\" return $i"),
      catalog_, &cache_);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->access.use_index);
  EXPECT_EQ(plan->access.served_predicate, 0);
  ASSERT_EQ(plan->residual_predicates.size(), 1u);
  EXPECT_EQ(plan->residual_predicates[0], 1);
}

TEST_F(OptimizerTest, MissingCollectionFails) {
  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> plan = opt.Optimize(
      Parse("for $x in doc(\"ghost\")/a return $x"), catalog_, &cache_);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST_F(OptimizerTest, UnanalyzedCollectionFails) {
  ASSERT_TRUE(db_.CreateCollection("raw").ok());
  ASSERT_TRUE(db_.LoadXml("raw", "<a><b>1</b></a>").ok());
  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> plan = opt.Optimize(
      Parse("for $x in doc(\"raw\")/a return $x"), catalog_, &cache_);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(OptimizerTest, PhysicalAndVirtualIndexesCostIdentically) {
  // The what-if contract: a virtual index must be costed like the real one.
  IndexDefinition def;
  def.name = "virt";
  def.collection = "xmark";
  def.pattern = P("/site/regions/africa/item/quantity");
  def.type = ValueType::kDouble;
  VirtualIndexStats stats =
      EstimateVirtualIndex(*synopsis_, def, cost_model_.storage);
  Catalog with_virtual;
  ASSERT_TRUE(with_virtual.AddVirtual(def, stats).ok());

  IndexDefinition def2 = def;
  def2.name = "phys";
  Result<PathIndex> built = BuildIndex(db_, def2);
  ASSERT_TRUE(built.ok());
  Catalog with_physical;
  ASSERT_TRUE(with_physical
                  .AddPhysical(std::make_shared<PathIndex>(std::move(*built)),
                               cost_model_.storage)
                  .ok());

  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> virt_plan =
      opt.Optimize(Parse(kQuantityQuery), with_virtual, &cache_);
  Result<QueryPlan> phys_plan =
      opt.Optimize(Parse(kQuantityQuery), with_physical, &cache_);
  ASSERT_TRUE(virt_plan.ok());
  ASSERT_TRUE(phys_plan.ok());
  ASSERT_TRUE(virt_plan->access.use_index);
  ASSERT_TRUE(phys_plan->access.use_index);
  // Estimated entries agree exactly, costs within a few percent (the
  // virtual size estimate vs the actual build).
  EXPECT_NEAR(virt_plan->total_cost / phys_plan->total_cost, 1.0, 0.10);
}

TEST_F(OptimizerTest, ExplainMentionsAccessAndCost) {
  AddVirtual("q_idx", "/site/regions/africa/item/quantity",
             ValueType::kDouble);
  Optimizer opt(&db_, cost_model_);
  Result<QueryPlan> plan =
      opt.Optimize(Parse(kQuantityQuery), catalog_, &cache_);
  ASSERT_TRUE(plan.ok());
  std::string explain = plan->Explain();
  EXPECT_NE(explain.find("INDEX"), std::string::npos);
  EXPECT_NE(explain.find("q_idx"), std::string::npos);
  EXPECT_NE(explain.find("Cost"), std::string::npos);
}

}  // namespace
}  // namespace xia
