#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace xia {
namespace {

TEST(ResolveThreadCountTest, PositivePassesThrough) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
}

TEST(ResolveThreadCountTest, ZeroAndNegativeMeanHardware) {
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_GE(ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, GroupIsReusableAcrossWaits) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      group.Run([&counter] { counter.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    TaskGroup group(&pool);
    for (int i = 0; i < 50; ++i) {
      group.Run([&counter] { counter.fetch_add(1); });
    }
    group.Wait();
  }  // ~ThreadPool joins after the queue is drained.
  EXPECT_EQ(counter.load(), 50);
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  TaskGroup group(nullptr);
  int calls = 0;
  group.Run([&calls] { ++calls; });
  EXPECT_EQ(calls, 1);  // Already ran, before Wait().
  group.Wait();
  EXPECT_EQ(calls, 1);
}

TEST(TaskGroupTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> completed{0};
  group.Run([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) {
    group.Run([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 10);  // Other tasks still ran to completion.
  // The group stays usable after the rethrow.
  group.Run([&completed] { completed.fetch_add(1); });
  EXPECT_NO_THROW(group.Wait());
  EXPECT_EQ(completed.load(), 11);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  ParallelFor(&pool, hits.size(), [&hits](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, NullPoolAndTinyRangesRunSerially) {
  std::vector<int> hits(10, 0);
  ParallelFor(nullptr, hits.size(), [&hits](size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);

  ThreadPool pool(2);
  int single = 0;
  ParallelFor(&pool, 1, [&single](size_t) { ++single; });
  EXPECT_EQ(single, 1);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "n=0 must not call fn"; });
}

TEST(ParallelForTest, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(&pool, 100,
                           [](size_t i) {
                             if (i == 57) throw std::runtime_error("mid");
                           }),
               std::runtime_error);
}

}  // namespace
}  // namespace xia
