// Crash-recovery matrix for the xia::storage persistence engine: every
// failpoint-injected "kill" (mid-WAL-append, mid-page-flush, mid-
// checkpoint-rename) is followed by a reopen that must reproduce the
// committed state bit-identically — same fingerprint, same catalog,
// same query results as a clean shutdown.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "storage/page.h"
#include "storage/storage_engine.h"
#include "xmldata/xmark_gen.h"

namespace xia {
namespace {

namespace fs = std::filesystem;
using storage::RecoveryStats;
using storage::StorageEngine;
using storage::StorageOptions;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string db_dir() const { return (path_ / "db").string(); }

 private:
  fs::path path_;
};

/// One open database: the in-memory objects plus the engine over them.
struct Instance {
  Database db;
  Catalog catalog;
  BufferPool pool{100000};
  CostModel cost_model;
  std::unique_ptr<StorageEngine> engine;

  Status OpenIn(const std::string& dir) {
    Result<std::unique_ptr<StorageEngine>> opened = StorageEngine::Open(
        dir, &db, &catalog, &pool, cost_model.storage, StorageOptions{});
    if (!opened.ok()) return opened.status();
    engine = std::move(*opened);
    return Status::Ok();
  }

  std::string Fingerprint() const {
    return StorageEngine::StateFingerprint(db, catalog);
  }
};

constexpr const char* kDocA = "<site><item><price>10</price></item></site>";
constexpr const char* kDocB =
    "<site><item><price>20</price><name>n&amp;1</name></item></site>";
constexpr const char* kDdl =
    "CREATE INDEX price_idx ON docs(doc) GENERATE KEY USING XMLPATTERN "
    "'/site/item/price' AS SQL DOUBLE";

/// Applies the canonical mutation sequence used across the matrix.
void ApplyBaseline(Instance* inst) {
  ASSERT_TRUE(inst->engine->CreateCollection("docs").ok());
  ASSERT_TRUE(inst->engine->LoadXml("docs", kDocA).ok());
  ASSERT_TRUE(inst->engine->LoadXml("docs", kDocB).ok());
  ASSERT_TRUE(inst->engine->Analyze("docs").ok());
  Result<std::string> idx = inst->engine->CreateIndex(kDdl);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, "price_idx");
}

TEST(PersistenceTest, FreshOpenCreatesEpochOneLayout) {
  ScratchDir dir("xia_persist_fresh");
  Instance inst;
  ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
  EXPECT_FALSE(inst.engine->recovery().opened_existing);
  EXPECT_EQ(inst.engine->epoch(), 1u);
  EXPECT_TRUE(fs::exists(fs::path(dir.db_dir()) / "MANIFEST"));
  EXPECT_TRUE(fs::exists(fs::path(dir.db_dir()) / "pages.1.xdb"));
  EXPECT_TRUE(fs::exists(fs::path(dir.db_dir()) / "wal.1.log"));
}

TEST(PersistenceTest, WalReplayReproducesUncheckpointedMutations) {
  ScratchDir dir("xia_persist_replay");
  std::string fingerprint;
  {
    Instance inst;
    ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
    ApplyBaseline(&inst);
    fingerprint = inst.Fingerprint();
    // Killed without Close(): everything lives only in the WAL.
  }
  Instance reopened;
  ASSERT_TRUE(reopened.OpenIn(dir.db_dir()).ok());
  const RecoveryStats& stats = reopened.engine->recovery();
  EXPECT_TRUE(stats.opened_existing);
  EXPECT_TRUE(stats.wal_was_clean);
  EXPECT_EQ(stats.wal_records_replayed, 5u);
  EXPECT_EQ(reopened.Fingerprint(), fingerprint);
  // The replayed catalog is live, not just equal: the index answers.
  const CatalogEntry* entry = reopened.catalog.Find("price_idx");
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->is_virtual);
  EXPECT_EQ(entry->physical->num_entries(), 2u);
  EXPECT_NE(reopened.db.synopsis("docs"), nullptr);
}

TEST(PersistenceTest, CleanCloseCheckpointsAndReopensWithEmptyWal) {
  ScratchDir dir("xia_persist_close");
  std::string fingerprint;
  {
    Instance inst;
    ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
    ApplyBaseline(&inst);
    fingerprint = inst.Fingerprint();
    ASSERT_TRUE(inst.engine->Close().ok());
  }
  Instance reopened;
  ASSERT_TRUE(reopened.OpenIn(dir.db_dir()).ok());
  EXPECT_EQ(reopened.engine->recovery().wal_records_replayed, 0u);
  EXPECT_GT(reopened.engine->recovery().pages_read, 0u);
  EXPECT_EQ(reopened.Fingerprint(), fingerprint);
}

TEST(PersistenceTest, CheckpointAdvancesEpochAndRemovesOldFiles) {
  ScratchDir dir("xia_persist_epoch");
  Instance inst;
  ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
  ApplyBaseline(&inst);
  ASSERT_TRUE(inst.engine->Checkpoint().ok());
  EXPECT_EQ(inst.engine->epoch(), 2u);
  EXPECT_TRUE(fs::exists(fs::path(dir.db_dir()) / "pages.2.xdb"));
  EXPECT_FALSE(fs::exists(fs::path(dir.db_dir()) / "pages.1.xdb"));
  EXPECT_FALSE(fs::exists(fs::path(dir.db_dir()) / "wal.1.log"));
  // Post-checkpoint mutations land in the new WAL and still recover.
  ASSERT_TRUE(inst.engine->CreateCollection("extra").ok());
  std::string fingerprint = inst.Fingerprint();
  inst.engine.reset();  // Kill.
  Instance reopened;
  ASSERT_TRUE(reopened.OpenIn(dir.db_dir()).ok());
  EXPECT_EQ(reopened.engine->epoch(), 2u);
  EXPECT_EQ(reopened.engine->recovery().wal_records_replayed, 1u);
  EXPECT_EQ(reopened.Fingerprint(), fingerprint);
}

// ------------------------------------------------------ Crash matrix.

TEST(PersistenceTest, KillMidWalAppendRecoversCommittedPrefix) {
  ScratchDir dir("xia_persist_torn_wal");
  std::string committed_fingerprint;
  {
    Instance inst;
    ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
    ASSERT_TRUE(inst.engine->CreateCollection("docs").ok());
    ASSERT_TRUE(inst.engine->LoadXml("docs", kDocA).ok());
    committed_fingerprint = inst.Fingerprint();

    // The next append (lsn 3) dies halfway through its record write.
    fp::FailSpec spec;
    spec.match_arg = 3;
    fp::ScopedFailpoint crash("storage.wal.append", spec);
    EXPECT_FALSE(inst.engine->LoadXml("docs", kDocB).ok());
    // The writer is poisoned, as a crashed process would be gone.
    EXPECT_FALSE(inst.engine->CreateCollection("more").ok());
    // Kill without Close(), leaving the torn record on disk.
  }
  uint64_t truncations_before =
      obs::Registry().TakeSnapshot().counter("storage.wal.truncated_tails");
  Instance reopened;
  ASSERT_TRUE(reopened.OpenIn(dir.db_dir()).ok());
  const RecoveryStats& stats = reopened.engine->recovery();
  EXPECT_FALSE(stats.wal_was_clean);
  EXPECT_GT(stats.wal_torn_bytes, 0u);
  EXPECT_EQ(stats.wal_records_replayed, 2u);
  EXPECT_EQ(reopened.Fingerprint(), committed_fingerprint);
  EXPECT_EQ(
      obs::Registry().TakeSnapshot().counter("storage.wal.truncated_tails"),
      truncations_before + 1);
  // The truncated WAL accepts new appends and they survive another trip.
  ASSERT_TRUE(reopened.engine->LoadXml("docs", kDocB).ok());
  std::string extended = reopened.Fingerprint();
  reopened.engine.reset();
  Instance again;
  ASSERT_TRUE(again.OpenIn(dir.db_dir()).ok());
  EXPECT_TRUE(again.engine->recovery().wal_was_clean);
  EXPECT_EQ(again.Fingerprint(), extended);
}

TEST(PersistenceTest, KillMidCheckpointFlushKeepsPreviousEpoch) {
  ScratchDir dir("xia_persist_flush_crash");
  std::string fingerprint;
  {
    Instance inst;
    ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
    ApplyBaseline(&inst);
    fingerprint = inst.Fingerprint();
    fp::ScopedFailpoint crash("storage.checkpoint.flush", fp::FailSpec{});
    EXPECT_FALSE(inst.engine->Checkpoint().ok());
    EXPECT_EQ(inst.engine->epoch(), 1u);  // Swap never happened.
  }
  // The torn page file was discarded; epoch 1 recovers via its WAL.
  EXPECT_FALSE(fs::exists(fs::path(dir.db_dir()) / "pages.2.xdb"));
  Instance reopened;
  ASSERT_TRUE(reopened.OpenIn(dir.db_dir()).ok());
  EXPECT_EQ(reopened.engine->epoch(), 1u);
  EXPECT_EQ(reopened.engine->recovery().wal_records_replayed, 5u);
  EXPECT_EQ(reopened.Fingerprint(), fingerprint);
}

TEST(PersistenceTest, KillBeforeManifestSwapKeepsPreviousEpoch) {
  ScratchDir dir("xia_persist_rename_crash");
  std::string fingerprint;
  {
    Instance inst;
    ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
    ApplyBaseline(&inst);
    fingerprint = inst.Fingerprint();
    fp::ScopedFailpoint crash("storage.checkpoint.rename", fp::FailSpec{});
    EXPECT_FALSE(inst.engine->Checkpoint().ok());
  }
  // New-epoch files exist but MANIFEST still names epoch 1: the stale
  // files are invisible to recovery and overwritten by the next
  // successful checkpoint.
  EXPECT_TRUE(fs::exists(fs::path(dir.db_dir()) / "pages.2.xdb"));
  Instance reopened;
  ASSERT_TRUE(reopened.OpenIn(dir.db_dir()).ok());
  EXPECT_EQ(reopened.engine->epoch(), 1u);
  EXPECT_EQ(reopened.Fingerprint(), fingerprint);
  ASSERT_TRUE(reopened.engine->Checkpoint().ok());
  EXPECT_EQ(reopened.engine->epoch(), 2u);
  EXPECT_EQ(reopened.Fingerprint(), fingerprint);
}

TEST(PersistenceTest, CorruptedPageFailsRecoveryWithChecksumError) {
  ScratchDir dir("xia_persist_bitflip");
  {
    Instance inst;
    ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
    ApplyBaseline(&inst);
    ASSERT_TRUE(inst.engine->Close().ok());
  }
  const std::string pages = (fs::path(dir.db_dir()) / "pages.2.xdb").string();
  ASSERT_TRUE(fs::exists(pages));
  {
    std::fstream f(pages, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(storage::kPageSize) + 100);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(static_cast<std::streamoff>(storage::kPageSize) + 100);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  uint64_t failures_before = obs::Registry().TakeSnapshot().counter(
      "storage.pages.checksum_failures");
  Instance reopened;
  Status status = reopened.OpenIn(dir.db_dir());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(obs::Registry().TakeSnapshot().counter(
                "storage.pages.checksum_failures"),
            failures_before + 1);
}

// ------------------------------------------- Queries over reloaded data.

TEST(PersistenceTest, BulkLoadCheckpointThenQueriesAreBitIdentical) {
  ScratchDir dir("xia_persist_xmark");
  constexpr const char* kQuery =
      "for $i in doc(\"xmark\")/site/regions/africa/item "
      "where $i/quantity > 5 return $i/name";
  Result<ExecResult> before = Status::Internal("not run");
  std::string fingerprint;
  {
    Instance inst;
    ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
    // Bulk generation bypasses the WAL (like loadcoll/gen verbs); the
    // explicit Checkpoint() is what makes it durable.
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&inst.db, "xmark", 10, params, 42).ok());
    ASSERT_TRUE(inst.engine->Analyze("xmark").ok());
    ASSERT_TRUE(
        inst.engine
            ->CreateIndex(
                "CREATE INDEX q_idx ON xmark(doc) GENERATE KEY USING "
                "XMLPATTERN '/site/regions/africa/item/quantity' AS SQL "
                "DOUBLE")
            .ok());
    ASSERT_TRUE(inst.engine->Checkpoint().ok());
    fingerprint = inst.Fingerprint();

    Result<Query> q = ParseQuery(kQuery);
    ASSERT_TRUE(q.ok());
    Optimizer opt(&inst.db, inst.cost_model);
    ContainmentCache cache;
    Result<QueryPlan> plan = opt.Optimize(*q, inst.catalog, &cache);
    ASSERT_TRUE(plan.ok());
    Executor exec(&inst.db, &inst.catalog, inst.cost_model, &inst.pool);
    before = exec.Execute(*plan);
    ASSERT_TRUE(before.ok());
  }
  Instance reopened;
  ASSERT_TRUE(reopened.OpenIn(dir.db_dir()).ok());
  EXPECT_EQ(reopened.Fingerprint(), fingerprint);
  Result<Query> q = ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  Optimizer opt(&reopened.db, reopened.cost_model);
  ContainmentCache cache;
  Result<QueryPlan> plan = opt.Optimize(*q, reopened.catalog, &cache);
  ASSERT_TRUE(plan.ok());
  Executor exec(&reopened.db, &reopened.catalog, reopened.cost_model,
                &reopened.pool);
  Result<ExecResult> after = exec.Execute(*plan);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->nodes, before->nodes);  // Bit-identical results.
}

// --------------------------------------------------- Pool accounting.

TEST(PersistenceTest, ColdOpenMissesWarmOpenHitsInBufferPool) {
  ScratchDir dir("xia_persist_pool");
  {
    Instance inst;
    ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
    ApplyBaseline(&inst);
    ASSERT_TRUE(inst.engine->Close().ok());
  }
  // Cold: a fresh pool has every checkpoint page missing.
  Database db_cold;
  Catalog cat_cold;
  BufferPool pool(100000);
  CostModel cost_model;
  Result<std::unique_ptr<StorageEngine>> cold = StorageEngine::Open(
      dir.db_dir(), &db_cold, &cat_cold, &pool, cost_model.storage,
      StorageOptions{});
  ASSERT_TRUE(cold.ok());
  uint64_t cold_misses = pool.misses();
  uint64_t pages = (*cold)->recovery().pages_read;
  EXPECT_GT(pages, 0u);
  EXPECT_GE(cold_misses, pages);
  EXPECT_EQ(pool.hits(), 0u);
  // Warm: the same pool already holds the pages.
  Database db_warm;
  Catalog cat_warm;
  Result<std::unique_ptr<StorageEngine>> warm = StorageEngine::Open(
      dir.db_dir(), &db_warm, &cat_warm, &pool, cost_model.storage,
      StorageOptions{});
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(pool.misses(), cold_misses);  // No new misses.
  EXPECT_EQ(pool.hits(), pages);
  EXPECT_EQ(StorageEngine::StateFingerprint(db_warm, cat_warm),
            StorageEngine::StateFingerprint(db_cold, cat_cold));
}

// ------------------------------------------------------- Guard rails.

TEST(PersistenceTest, RecoveryRefusesNonEmptyDatabase) {
  ScratchDir dir("xia_persist_nonempty");
  {
    Instance inst;
    ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
    ApplyBaseline(&inst);
    ASSERT_TRUE(inst.engine->Close().ok());
  }
  Instance dirty;
  ASSERT_TRUE(dirty.db.CreateCollection("already_here").ok());
  Status status = dirty.OpenIn(dir.db_dir());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(PersistenceTest, MalformedXmlIsRejectedBeforeLogging) {
  ScratchDir dir("xia_persist_badxml");
  Instance inst;
  ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
  ASSERT_TRUE(inst.engine->CreateCollection("docs").ok());
  uint64_t lsn = inst.engine->next_lsn();
  EXPECT_FALSE(inst.engine->LoadXml("docs", "<open><unclosed>").ok());
  // Nothing was logged: a record that cannot replay must never hit disk.
  EXPECT_EQ(inst.engine->next_lsn(), lsn);
  ASSERT_TRUE(inst.engine->LoadXml("docs", kDocA).ok());  // Still healthy.
}

TEST(PersistenceTest, TruncatedManifestFailsCleanly) {
  ScratchDir dir("xia_persist_manifest");
  {
    Instance inst;
    ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
    ASSERT_TRUE(inst.engine->Close().ok());
  }
  const std::string manifest = (fs::path(dir.db_dir()) / "MANIFEST").string();
  // Drop the trailing "ok" line: the swap never completed.
  std::ofstream(manifest, std::ios::trunc)
      << "xia-manifest v1\nepoch 2\npages pages.2.xdb\n";
  Instance reopened;
  Status status = reopened.OpenIn(dir.db_dir());
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(status.message().empty());
}

// ---------------------------------------------------- DML write path.

TEST(PersistenceTest, DmlMutationsReplayToIdenticalFingerprint) {
  ScratchDir dir("xia_persist_dml_replay");
  std::string fingerprint;
  {
    Instance inst;
    ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
    ApplyBaseline(&inst);
    ASSERT_TRUE(inst.engine->InsertDocument("docs", kDocA).ok());
    ASSERT_TRUE(inst.engine->DeleteDocument("docs", 0).ok());
    Result<dml::DmlResult> updated =
        inst.engine->UpdateDocument("docs", 1, kDocB);
    ASSERT_TRUE(updated.ok()) << updated.status().ToString();
    EXPECT_EQ(updated->doc, 3);  // Replacement under a fresh DocId.
    fingerprint = inst.Fingerprint();
    // Killed without Close(): the DML records live only in the WAL.
  }
  Instance reopened;
  ASSERT_TRUE(reopened.OpenIn(dir.db_dir()).ok());
  EXPECT_EQ(reopened.engine->recovery().wal_records_replayed, 8u);
  EXPECT_EQ(reopened.Fingerprint(), fingerprint);
  // Tombstones replay as tombstones: slots survive, liveness does not.
  Collection* coll = reopened.db.GetCollection("docs");
  ASSERT_NE(coll, nullptr);
  EXPECT_EQ(coll->num_docs(), 4u);
  EXPECT_EQ(coll->num_live_docs(), 2u);
  EXPECT_FALSE(coll->IsLive(0));
  EXPECT_FALSE(coll->IsLive(1));
  // The maintained index replays live, consistent with the visible docs.
  const CatalogEntry* entry = reopened.catalog.Find("price_idx");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->physical->num_entries(), 2u);
}

TEST(PersistenceTest, DmlMutationsSurviveCheckpointWithTombstones) {
  ScratchDir dir("xia_persist_dml_ckpt");
  constexpr const char* kQuery =
      "for $i in doc(\"docs\")/site/item where $i/price > 0 return $i";
  std::string fingerprint;
  {
    Instance inst;
    ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
    ApplyBaseline(&inst);
    ASSERT_TRUE(inst.engine->DeleteDocument("docs", 0).ok());
    ASSERT_TRUE(inst.engine->Close().ok());  // Checkpoint, empty WAL.
    fingerprint = inst.Fingerprint();
  }
  Instance reopened;
  ASSERT_TRUE(reopened.OpenIn(dir.db_dir()).ok());
  EXPECT_EQ(reopened.engine->recovery().wal_records_replayed, 0u);
  EXPECT_EQ(reopened.Fingerprint(), fingerprint);
  Collection* coll = reopened.db.GetCollection("docs");
  EXPECT_FALSE(coll->IsLive(0));
  EXPECT_TRUE(coll->IsLive(1));
  // The deleted document stays invisible to queries after recovery.
  Result<Query> q = ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  Optimizer opt(&reopened.db, reopened.cost_model);
  ContainmentCache cache;
  Result<QueryPlan> plan = opt.Optimize(*q, reopened.catalog, &cache);
  ASSERT_TRUE(plan.ok());
  Executor exec(&reopened.db, &reopened.catalog, reopened.cost_model,
                &reopened.pool);
  Result<ExecResult> result = exec.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->docs_matched, 1u);
  for (const NodeRef& ref : result->nodes) {
    EXPECT_EQ(ref.doc, 1);
  }
}

TEST(PersistenceTest, KillMidDmlAppendRecoversCommittedPrefix) {
  // One kill per DML verb: the record dies inside its WAL append, so the
  // reopened state must equal the pre-mutation fingerprint exactly.
  struct Case {
    const char* name;
    std::function<Status(Instance*)> mutate;
  };
  const Case cases[] = {
      {"insert",
       [](Instance* inst) {
         return inst->engine->InsertDocument("docs", kDocB).status();
       }},
      {"delete",
       [](Instance* inst) {
         return inst->engine->DeleteDocument("docs", 0).status();
       }},
      {"update",
       [](Instance* inst) {
         return inst->engine->UpdateDocument("docs", 0, kDocB).status();
       }},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    ScratchDir dir(std::string("xia_persist_dml_torn_") + c.name);
    std::string committed_fingerprint;
    {
      Instance inst;
      ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
      ASSERT_TRUE(inst.engine->CreateCollection("docs").ok());
      ASSERT_TRUE(inst.engine->LoadXml("docs", kDocA).ok());
      committed_fingerprint = inst.Fingerprint();

      fp::FailSpec spec;
      spec.match_arg = inst.engine->next_lsn();
      fp::ScopedFailpoint crash("storage.wal.append", spec);
      EXPECT_FALSE(c.mutate(&inst).ok());
      // Kill without Close(), leaving the torn record on disk.
    }
    Instance reopened;
    ASSERT_TRUE(reopened.OpenIn(dir.db_dir()).ok());
    EXPECT_FALSE(reopened.engine->recovery().wal_was_clean);
    EXPECT_EQ(reopened.engine->recovery().wal_records_replayed, 2u);
    EXPECT_EQ(reopened.Fingerprint(), committed_fingerprint);
    // The mutation that died re-applies cleanly after recovery.
    Result<dml::DmlResult> retried =
        reopened.engine->InsertDocument("docs", kDocB);
    EXPECT_TRUE(retried.ok()) << retried.status().ToString();
  }
}

TEST(PersistenceTest, DmlAgainstMissingTargetsIsRejectedBeforeLogging) {
  ScratchDir dir("xia_persist_dml_reject");
  Instance inst;
  ASSERT_TRUE(inst.OpenIn(dir.db_dir()).ok());
  ASSERT_TRUE(inst.engine->CreateCollection("docs").ok());
  ASSERT_TRUE(inst.engine->LoadXml("docs", kDocA).ok());
  uint64_t lsn = inst.engine->next_lsn();
  // Unknown collection, dead/missing DocId, malformed XML: each must be
  // refused before a WAL record exists (an unreplayable record would
  // poison every future recovery).
  EXPECT_FALSE(inst.engine->InsertDocument("nope", kDocA).ok());
  EXPECT_FALSE(inst.engine->InsertDocument("docs", "<broken").ok());
  EXPECT_FALSE(inst.engine->DeleteDocument("docs", 7).ok());
  EXPECT_FALSE(inst.engine->UpdateDocument("docs", 0, "<broken").ok());
  EXPECT_FALSE(inst.engine->UpdateDocument("docs", 7, kDocB).ok());
  EXPECT_EQ(inst.engine->next_lsn(), lsn);
  ASSERT_TRUE(inst.engine->DeleteDocument("docs", 0).ok());  // Healthy.
}

}  // namespace
}  // namespace xia
