// Robustness "mini-fuzz": the parsers must return clean errors — never
// crash, hang, or corrupt state — on mutated and truncated inputs, and
// randomly *built* documents must round-trip through serialize/parse.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/random.h"
#include "index/catalog.h"
#include "query/parser.h"
#include "storage/collection_io.h"
#include "storage/database.h"
#include "storage/page.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "wlm/wlm_io.h"
#include "workload/workload_io.h"
#include "xml/builder.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace xia {
namespace {

/// Random printable mutation of one character.
std::string Mutate(const std::string& input, Random* rng) {
  if (input.empty()) return input;
  std::string out = input;
  size_t pos = static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(input.size()) - 1));
  switch (rng->Uniform(0, 2)) {
    case 0:  // Replace with a random printable char.
      out[pos] = static_cast<char>(rng->Uniform(32, 126));
      break;
    case 1:  // Delete.
      out.erase(pos, 1);
      break;
    default:  // Duplicate.
      out.insert(pos, 1, out[pos]);
      break;
  }
  return out;
}

constexpr const char* kSeedQueries[] = {
    "for $i in doc(\"xmark\")/site/regions/africa/item "
    "where $i/quantity > 5 and $i/payment = \"Cash\" return $i/name",
    "select xmlquery('$d/a/b') from t where xmlexists('$d/a[x = 1]')",
    "for $x in doc(\"c\")/a let $p := $x/b order by $p return $p",
};

TEST(FuzzTest, QueryParserSurvivesMutations) {
  Random rng(31337);
  for (const char* seed : kSeedQueries) {
    std::string current = seed;
    for (int round = 0; round < 400; ++round) {
      current = Mutate(current, &rng);
      // Must not crash; result is either ok or a clean error.
      Result<Query> q = ParseQuery(current);
      if (!q.ok()) {
        EXPECT_FALSE(q.status().message().empty());
      }
      if (round % 40 == 0) current = seed;  // Re-seed to stay near-valid.
    }
  }
}

TEST(FuzzTest, QueryParserSurvivesTruncations) {
  for (const char* seed : kSeedQueries) {
    std::string text = seed;
    for (size_t len = 0; len <= text.size(); ++len) {
      Result<Query> q = ParseQuery(text.substr(0, len));
      (void)q;  // Any outcome is fine; crashing is not.
    }
  }
}

TEST(FuzzTest, PathParserSurvivesMutations) {
  Random rng(99);
  std::string seed = "/site/regions/*/item[quantity > 5]/@id";
  std::string current = seed;
  for (int round = 0; round < 600; ++round) {
    current = Mutate(current, &rng);
    (void)ParsePathExpr(current);
    (void)ParsePathPattern(current);
    if (round % 50 == 0) current = seed;
  }
}

TEST(FuzzTest, XmlParserSurvivesMutations) {
  Random rng(7);
  NameTable names;
  XmlParser parser(&names);
  std::string seed =
      "<site><item id=\"i&amp;1\"><price>42</price>"
      "<!-- c --><![CDATA[x<y]]></item></site>";
  std::string current = seed;
  for (int round = 0; round < 600; ++round) {
    current = Mutate(current, &rng);
    (void)parser.Parse(current);
    if (round % 50 == 0) current = seed;
  }
}

TEST(FuzzTest, WorkloadParserSurvivesMutations) {
  Random rng(5);
  std::string seed =
      "query Q1 2 for $i in doc(\"x\")/a where $i/b > 1 return $i\n"
      "update insert x 3 /a/b\n";
  std::string current = seed;
  for (int round = 0; round < 400; ++round) {
    current = Mutate(current, &rng);
    (void)ParseWorkloadText(current);
    if (round % 40 == 0) current = seed;
  }
}

namespace fs = std::filesystem;

/// Scratch directory for on-disk loader fuzzing, wiped on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

void WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

TEST(FuzzTest, WorkloadFileLoaderSurvivesMutatedFiles) {
  ScratchDir dir("xia_fuzz_workload_io");
  const std::string seed =
      "# training workload\n"
      "query Q1 2 for $i in doc(\"x\")/a where $i/b > 1 return $i\n"
      "update insert x 3 /a/b\n";
  const std::string path = (dir.path() / "w.workload").string();
  Random rng(1234);
  std::string current = seed;
  for (int round = 0; round < 120; ++round) {
    current = Mutate(current, &rng);
    WriteFile(path, current);
    // Must not crash; result is either ok or a clean error.
    Result<Workload> loaded = LoadWorkloadFile(path);
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty());
    }
    if (round % 30 == 0) current = seed;
  }
  // Truncations of the pristine seed, byte by byte.
  for (size_t len = 0; len <= seed.size(); ++len) {
    WriteFile(path, seed.substr(0, len));
    (void)LoadWorkloadFile(path);  // Any outcome is fine; crashing is not.
  }
  // A missing file is a clean NotFound-style error, not a crash.
  EXPECT_FALSE(LoadWorkloadFile((dir.path() / "absent").string()).ok());
}

TEST(FuzzTest, CaptureLogLoaderSurvivesMutatedFiles) {
  ScratchDir dir("xia_fuzz_wlm_io");
  // A real serialized log as the seed: saved through the temp-file+rename
  // writer, so the fuzz loop starts from exactly what SaveCaptureLogFile
  // produces in the field.
  std::vector<wlm::CaptureRecord> records;
  for (int i = 0; i < 3; ++i) {
    wlm::CaptureRecord r;
    r.seq = static_cast<uint64_t>(i);
    r.timestamp_micros = 1700000000000000 + i;
    r.est_cost = 1.5 * (i + 1);
    r.text = "for $i in doc(\"x\")/a where $i/b > " + std::to_string(i) +
             " return $i";
    records.push_back(std::move(r));
  }
  // Version-2 format: DML records interleave with query records.
  for (wlm::CaptureKind kind :
       {wlm::CaptureKind::kInsert, wlm::CaptureKind::kDelete,
        wlm::CaptureKind::kUpdate}) {
    wlm::CaptureRecord r;
    r.kind = kind;
    r.seq = records.size();
    r.timestamp_micros = 1700000000000000 + records.size();
    r.est_cost = 7.5;
    r.text = "docs /site";
    r.fingerprint = "dml:" + std::string(wlm::CaptureKindName(kind)) +
                    ":docs:/site";
    records.push_back(std::move(r));
  }
  const std::string path = (dir.path() / "log.wlm").string();
  ASSERT_TRUE(wlm::SaveCaptureLogFile(records, path).ok());
  std::string seed = wlm::SerializeCaptureLog(records);
  {
    Result<std::vector<wlm::CaptureRecord>> pristine =
        wlm::LoadCaptureLogFile(path);
    ASSERT_TRUE(pristine.ok());
    ASSERT_EQ(pristine->size(), records.size());
  }
  Random rng(97531);
  std::string current = seed;
  for (int round = 0; round < 120; ++round) {
    current = Mutate(current, &rng);
    WriteFile(path, current);
    // Must not crash; result is either ok or a clean error.
    Result<std::vector<wlm::CaptureRecord>> loaded =
        wlm::LoadCaptureLogFile(path);
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty());
    } else {
      // Whatever survived mutation must carry recomputed fingerprints
      // that re-parse cleanly — the loader never trusts file bytes.
      for (const wlm::CaptureRecord& r : *loaded) {
        if (r.kind == wlm::CaptureKind::kQuery) {
          EXPECT_TRUE(ParseQuery(r.text).ok());
        }
        EXPECT_FALSE(r.fingerprint.empty());
      }
    }
    if (round % 30 == 0) current = seed;
  }
  // Truncations of the pristine seed, byte by byte (torn reads).
  for (size_t len = 0; len <= seed.size(); ++len) {
    WriteFile(path, seed.substr(0, len));
    (void)wlm::LoadCaptureLogFile(path);  // Any outcome but a crash.
  }
  // A missing file is a clean error, not a crash.
  EXPECT_FALSE(
      wlm::LoadCaptureLogFile((dir.path() / "absent").string()).ok());
}

TEST(FuzzTest, CollectionLoaderSurvivesMutatedFiles) {
  ScratchDir dir("xia_fuzz_collection_io");
  const std::string seed =
      "<site><item id=\"i1\"><price>42</price><name>x&amp;y</name>"
      "</item></site>";
  const std::string path = (dir.path() / "doc_0.xml").string();
  // Sanity: the pristine seed loads, so the loop below exercises the
  // loader proper and not some setup failure.
  WriteFile(path, seed);
  {
    Database db;
    ASSERT_TRUE(LoadCollectionFromDirectory(&db, "c", dir.path().string())
                    .ok());
  }
  Random rng(4321);
  std::string current = seed;
  for (int round = 0; round < 120; ++round) {
    current = Mutate(current, &rng);
    WriteFile(path, current);
    Database db;
    Result<size_t> loaded =
        LoadCollectionFromDirectory(&db, "c", dir.path().string());
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty());
    }
    if (round % 30 == 0) current = seed;
  }
  // Truncations: every prefix of the seed document.
  for (size_t len = 0; len <= seed.size(); ++len) {
    WriteFile(path, seed.substr(0, len));
    Database db;
    (void)LoadCollectionFromDirectory(&db, "c", dir.path().string());
  }
}

// ------------------------------------------- Persistent-storage loaders.

/// A well-formed three-record WAL image for the scanner fuzz loops.
std::string SeedWalImage() {
  std::string image;
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
    storage::WalRecord record;
    record.lsn = lsn;
    record.type = storage::WalRecordType::kCreateCollection;
    record.payload = std::string("\x05\0\0\0", 4) + "coll" +
                     std::to_string(lsn);
    image += storage::EncodeWalRecord(record);
  }
  return image;
}

TEST(FuzzTest, WalScannerSurvivesTruncations) {
  const std::string seed = SeedWalImage();
  for (size_t len = 0; len <= seed.size(); ++len) {
    storage::WalReadResult result =
        storage::ScanWal(std::string_view(seed.data(), len));
    // The valid prefix is all the scanner may return; a cut anywhere
    // inside record k must yield exactly the records before k.
    EXPECT_LE(result.valid_bytes, len);
    for (size_t i = 0; i < result.records.size(); ++i) {
      EXPECT_EQ(result.records[i].lsn, i + 1);
    }
    EXPECT_EQ(result.clean, result.valid_bytes == len);
  }
}

TEST(FuzzTest, WalScannerSurvivesBitFlips) {
  const std::string seed = SeedWalImage();
  Random rng(60221);
  for (int round = 0; round < 300; ++round) {
    std::string image = seed;
    size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(image.size()) - 1));
    image[pos] = static_cast<char>(
        image[pos] ^ static_cast<char>(1 << rng.Uniform(0, 7)));
    storage::WalReadResult result = storage::ScanWal(image);
    // A single bit flip may only drop records from the flipped one on;
    // every surviving record must be byte-identical to its original.
    EXPECT_LE(result.records.size(), 3u);
    for (size_t i = 0; i < result.records.size(); ++i) {
      EXPECT_EQ(result.records[i].type,
                storage::WalRecordType::kCreateCollection);
    }
  }
}

/// A WAL image exercising the DML record types (insert/delete/update),
/// payload-encoded exactly as StorageEngine logs them.
std::string SeedDmlWalImage() {
  std::string image;
  auto append = [&image](uint64_t lsn, storage::WalRecordType type,
                         std::string payload) {
    storage::WalRecord record;
    record.lsn = lsn;
    record.type = type;
    record.payload = std::move(payload);
    image += storage::EncodeWalRecord(record);
  };
  {
    storage::BinWriter w;
    w.Str("docs");
    w.Str("<site><item><price>1</price></item></site>");
    append(1, storage::WalRecordType::kInsertDocument, w.Take());
  }
  {
    storage::BinWriter w;
    w.Str("docs");
    w.I32(0);
    append(2, storage::WalRecordType::kDeleteDocument, w.Take());
  }
  {
    storage::BinWriter w;
    w.Str("docs");
    w.I32(1);
    w.Str("<site><item><price>2</price></item></site>");
    append(3, storage::WalRecordType::kUpdateDocument, w.Take());
  }
  return image;
}

TEST(FuzzTest, WalScannerSurvivesDmlRecordTruncations) {
  const std::string seed = SeedDmlWalImage();
  for (size_t len = 0; len <= seed.size(); ++len) {
    storage::WalReadResult result =
        storage::ScanWal(std::string_view(seed.data(), len));
    EXPECT_LE(result.valid_bytes, len);
    for (size_t i = 0; i < result.records.size(); ++i) {
      EXPECT_EQ(result.records[i].lsn, i + 1);
    }
    EXPECT_EQ(result.clean, result.valid_bytes == len);
  }
}

TEST(FuzzTest, WalScannerSurvivesDmlRecordBitFlips) {
  const std::string seed = SeedDmlWalImage();
  Random rng(80442);
  for (int round = 0; round < 300; ++round) {
    std::string image = seed;
    size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(image.size()) - 1));
    image[pos] = static_cast<char>(
        image[pos] ^ static_cast<char>(1 << rng.Uniform(0, 7)));
    storage::WalReadResult result = storage::ScanWal(image);
    // A flip may only drop records from the damaged one on; whatever
    // survives must still carry one of the three DML types it was
    // written with (a flipped type byte fails the record checksum).
    EXPECT_LE(result.records.size(), 3u);
    for (const storage::WalRecord& record : result.records) {
      EXPECT_TRUE(
          record.type == storage::WalRecordType::kInsertDocument ||
          record.type == storage::WalRecordType::kDeleteDocument ||
          record.type == storage::WalRecordType::kUpdateDocument);
    }
  }
}

TEST(FuzzTest, PageReaderSurvivesTruncationsAndBitFlips) {
  std::string image;
  storage::BinWriter payload;
  payload.Str("some page payload");
  storage::AppendPage(&image, 0, storage::PageType::kMeta, payload.bytes());
  storage::AppendPage(&image, 1, storage::PageType::kNodes, "abc");
  // Truncations: reading past the cut is a clean error.
  for (size_t len = 0; len < image.size(); len += 257) {
    std::string_view cut(image.data(), len);
    for (uint64_t page = 0; page < 2; ++page) {
      Result<storage::PageView> view = storage::ReadPage(cut, page);
      if (!view.ok()) {
        EXPECT_FALSE(view.status().message().empty());
      }
    }
  }
  // Bit flips: either the checksum catches it or the page is untouched
  // in the fields that matter (flips inside the padding still flag,
  // since the CRC covers the whole page).
  Random rng(8086);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = image;
    size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(
        mutated[pos] ^ static_cast<char>(1 << rng.Uniform(0, 7)));
    uint64_t flipped_page = pos / storage::kPageSize;
    bool checksum_failed = false;
    Result<storage::PageView> view =
        storage::ReadPage(mutated, flipped_page, &checksum_failed);
    EXPECT_FALSE(view.ok());  // CRC covers every byte of the page.
    uint64_t other_page = 1 - flipped_page;
    EXPECT_TRUE(storage::ReadPage(mutated, other_page).ok());
  }
}

TEST(FuzzTest, CheckpointLoaderSurvivesMutatedPageFiles) {
  ScratchDir dir("xia_fuzz_checkpoint");
  const std::string db_dir = (dir.path() / "db").string();
  {
    Database db;
    Catalog catalog;
    Result<std::unique_ptr<storage::StorageEngine>> engine =
        storage::StorageEngine::Open(db_dir, &db, &catalog, nullptr,
                                     StorageConstants{});
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->CreateCollection("docs").ok());
    ASSERT_TRUE(
        (*engine)
            ->LoadXml("docs", "<site><item><price>9</price></item></site>")
            .ok());
    ASSERT_TRUE((*engine)->Analyze("docs").ok());
    ASSERT_TRUE((*engine)->Close().ok());
  }
  const std::string pages = (fs::path(db_dir) / "pages.2.xdb").string();
  std::string seed;
  {
    std::ifstream in(pages, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    seed = buf.str();
  }
  ASSERT_FALSE(seed.empty());
  Random rng(777);
  auto reopen = [&]() -> Status {
    Database db;
    Catalog catalog;
    Result<std::unique_ptr<storage::StorageEngine>> engine =
        storage::StorageEngine::Open(db_dir, &db, &catalog, nullptr,
                                     StorageConstants{});
    return engine.ok() ? Status::Ok() : engine.status();
  };
  // Bit flips anywhere in the page file: recovery must either succeed
  // (flip restored by double-flip rounds is impossible here — any flip
  // lands in a CRC-covered page) or fail with a clean message. Never
  // crash, never load half a database.
  for (int round = 0; round < 60; ++round) {
    std::string mutated = seed;
    size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(
        mutated[pos] ^ static_cast<char>(1 << rng.Uniform(0, 7)));
    WriteFile(pages, mutated);
    Status status = reopen();
    EXPECT_FALSE(status.ok());
    EXPECT_FALSE(status.message().empty());
  }
  // Truncations at page granularity and ragged cuts.
  for (size_t len : {size_t{0}, size_t{100}, storage::kPageSize + size_t{0},
                     seed.size() - storage::kPageSize, seed.size() - 1}) {
    WriteFile(pages, seed.substr(0, len));
    Status status = reopen();
    EXPECT_FALSE(status.ok());
  }
  // The pristine file still loads after all that.
  WriteFile(pages, seed);
  EXPECT_TRUE(reopen().ok());
}

/// Builds a random tree of bounded size via DocumentBuilder.
Document RandomDocument(NameTable* names, Random* rng) {
  DocumentBuilder b(names);
  const std::vector<std::string> tags = {"a", "b", "c", "d"};
  int open = 0;
  int emitted = 0;
  b.StartElement("root");
  ++open;
  int target = static_cast<int>(rng->Uniform(5, 60));
  while (emitted < target || open > 1) {
    if (emitted < target &&
        (open < 2 || rng->Bernoulli(0.55))) {
      b.StartElement(rng->Choice(tags));
      ++open;
      ++emitted;
      if (rng->Bernoulli(0.3)) {
        b.AddAttribute("k" + std::to_string(rng->Uniform(0, 2)),
                       std::to_string(rng->Uniform(0, 999)));
      }
      if (rng->Bernoulli(0.4)) {
        b.AddText("v " + std::to_string(rng->Uniform(0, 99)) + " <&>");
      }
    }
    if (open > 1 && (emitted >= target || rng->Bernoulli(0.5))) {
      b.EndElement();
      --open;
    }
  }
  b.EndElement();
  Result<Document> doc = b.Finish();
  EXPECT_TRUE(doc.ok());
  return std::move(*doc);
}

TEST(FuzzTest, RandomDocumentsRoundTripThroughSerializer) {
  Random rng(2718);
  NameTable names;
  XmlParser parser(&names);
  for (int trial = 0; trial < 50; ++trial) {
    Document original = RandomDocument(&names, &rng);
    std::string xml = SerializeDocument(original, names);
    Result<Document> reparsed = parser.Parse(xml);
    ASSERT_TRUE(reparsed.ok()) << xml;
    EXPECT_EQ(reparsed->num_nodes(), original.num_nodes()) << xml;
    // Second round trip is a fixpoint.
    EXPECT_EQ(SerializeDocument(*reparsed, names), xml);
  }
}

}  // namespace
}  // namespace xia
