// Parallel-vs-serial equivalence: the advisor's what-if fan-out must be
// invisible in every observable output — evaluation costs, used-candidate
// sets, evaluation counts, and full recommendations are required to be
// bit-identical across thread counts.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/benefit.h"
#include "advisor/whatif.h"
#include "common/failpoint.h"
#include "storage/collection_io.h"
#include "workload/workload_io.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"
#include "xpath/parser.h"

namespace xia {
namespace {

PathPattern P(const std::string& text) {
  Result<PathPattern> p = ParsePathPattern(text);
  EXPECT_TRUE(p.ok()) << text;
  return std::move(*p);
}

class ParallelEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&db_, "xmark", 6, params, 42).ok());
    workload_ = MakeXMarkWorkload("xmark");

    candidates_.push_back(
        Cand("/site/regions/namerica/item/quantity", ValueType::kDouble));
    candidates_.push_back(
        Cand("/site/regions/*/item/quantity", ValueType::kDouble));
    candidates_.push_back(Cand("/site/regions/*/item/*", ValueType::kDouble));
    candidates_.push_back(Cand("/site/regions/*/item/*", ValueType::kVarchar));
    candidates_.push_back(Cand("//item/payment", ValueType::kVarchar));
    candidates_.push_back(
        Cand("/site/people/person/profile/@income", ValueType::kDouble));
  }

  CandidateIndex Cand(const std::string& pattern, ValueType type) {
    CandidateIndex c;
    c.def.collection = "xmark";
    c.def.pattern = P(pattern);
    c.def.type = type;
    c.stats = EstimateVirtualIndex(*db_.synopsis("xmark"), c.def,
                                   cost_model_.storage);
    return c;
  }

  /// A fresh evaluator with its own containment cache, at `threads`.
  struct Rig {
    std::unique_ptr<Optimizer> optimizer;
    std::unique_ptr<ContainmentCache> cache;
    std::unique_ptr<ConfigurationEvaluator> evaluator;
  };
  Rig MakeRig(int threads) {
    Rig rig;
    rig.optimizer = std::make_unique<Optimizer>(&db_, cost_model_);
    rig.cache = std::make_unique<ContainmentCache>();
    rig.evaluator = std::make_unique<ConfigurationEvaluator>(
        rig.optimizer.get(), &workload_, &base_catalog_, &candidates_,
        rig.cache.get(), /*account_update_cost=*/true, threads);
    return rig;
  }

  static void ExpectIdentical(const ConfigurationEvaluator::Evaluation& a,
                              const ConfigurationEvaluator::Evaluation& b) {
    EXPECT_EQ(a.workload_cost, b.workload_cost);  // Bitwise: no tolerance.
    EXPECT_EQ(a.update_cost, b.update_cost);
    EXPECT_EQ(a.per_query_cost, b.per_query_cost);
    EXPECT_EQ(a.used_candidates, b.used_candidates);
  }

  Database db_;
  Workload workload_;
  Catalog base_catalog_;
  CostModel cost_model_;
  std::vector<CandidateIndex> candidates_;
};

TEST_F(ParallelEvalTest, EvaluateIdenticalAcrossThreadCounts) {
  Rig serial = MakeRig(1);
  Rig parallel = MakeRig(4);
  EXPECT_EQ(serial.evaluator->threads(), 1);
  EXPECT_EQ(parallel.evaluator->threads(), 4);

  std::vector<std::vector<int>> configs = {
      {}, {0}, {1}, {2}, {0, 1}, {1, 4}, {0, 1, 2, 3, 4, 5}, {5, 3, 1}};
  for (const std::vector<int>& config : configs) {
    Result<ConfigurationEvaluator::Evaluation> s =
        serial.evaluator->Evaluate(config);
    Result<ConfigurationEvaluator::Evaluation> p =
        parallel.evaluator->Evaluate(config);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(p.ok());
    ExpectIdentical(*s, *p);
  }
  EXPECT_EQ(serial.evaluator->num_evaluations(),
            parallel.evaluator->num_evaluations());
}

TEST_F(ParallelEvalTest, EvaluateManyMatchesSequentialEvaluate) {
  Rig sequential = MakeRig(1);
  Rig batched = MakeRig(4);

  std::vector<std::vector<int>> configs;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    configs.push_back({static_cast<int>(i)});
  }
  configs.push_back({0, 2, 4});
  configs.push_back({2, 0, 4});  // Duplicate after canonicalization.
  configs.push_back({});

  std::vector<Result<ConfigurationEvaluator::Evaluation>> batch =
      batched.evaluator->EvaluateMany(configs);
  ASSERT_EQ(batch.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    Result<ConfigurationEvaluator::Evaluation> expect =
        sequential.evaluator->Evaluate(configs[i]);
    ASSERT_TRUE(expect.ok());
    ASSERT_TRUE(batch[i].ok());
    ExpectIdentical(*expect, *batch[i]);
  }
  // Deduplicated batch performs exactly the sequential number of distinct
  // optimizations.
  EXPECT_EQ(batched.evaluator->num_evaluations(),
            sequential.evaluator->num_evaluations());
}

TEST_F(ParallelEvalTest, BaselineCostIdentical) {
  Rig serial = MakeRig(1);
  Rig parallel = MakeRig(4);
  Result<double> s = serial.evaluator->BaselineCost();
  Result<double> p = parallel.evaluator->BaselineCost();
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*s, *p);
}

TEST_F(ParallelEvalTest, AdvisorRecommendationIdenticalAcrossThreads) {
  for (SearchAlgorithm algo :
       {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyHeuristic,
        SearchAlgorithm::kTopDown}) {
    Recommendation recs[2];
    int thread_counts[2] = {1, 4};
    for (int t = 0; t < 2; ++t) {
      AdvisorOptions options;
      options.algorithm = algo;
      options.space_budget_bytes = 128.0 * 1024;
      options.threads = thread_counts[t];
      Advisor advisor(&db_, &base_catalog_, options);
      Result<Recommendation> rec = advisor.Recommend(workload_);
      ASSERT_TRUE(rec.ok()) << SearchAlgorithmName(algo);
      recs[t] = std::move(*rec);
    }
    EXPECT_EQ(recs[0].search.chosen, recs[1].search.chosen)
        << SearchAlgorithmName(algo);
    EXPECT_EQ(recs[0].search.workload_cost, recs[1].search.workload_cost)
        << SearchAlgorithmName(algo);
    EXPECT_EQ(recs[0].search.update_cost, recs[1].search.update_cost);
    EXPECT_EQ(recs[0].search.baseline_cost, recs[1].search.baseline_cost);
    EXPECT_EQ(recs[0].search.evaluations, recs[1].search.evaluations)
        << SearchAlgorithmName(algo);
    EXPECT_EQ(recs[0].search.trace, recs[1].search.trace);
    ASSERT_EQ(recs[0].indexes.size(), recs[1].indexes.size());
    for (size_t i = 0; i < recs[0].indexes.size(); ++i) {
      EXPECT_EQ(recs[0].indexes[i].DdlString(), recs[1].indexes[i].DdlString());
    }
  }
}

// A failpoint tripping query k's what-if optimization must surface the
// SAME statuses and the SAME deterministic stats at threads 1 and 4:
// query k's injected error wins (lowest index), later queries are
// cancelled, and the partial evaluation/cache trace does not depend on
// scheduling.
TEST_F(ParallelEvalTest, InjectedFailureDeterministicAcrossThreads) {
  std::vector<std::vector<int>> configs = {
      {}, {0}, {1}, {0, 1}, {1, 4}, {0, 1, 2, 3, 4, 5}};
  fp::FailSpec spec;
  spec.code = StatusCode::kInternal;
  spec.message = "injected: query 2 what-if failed";
  spec.match_arg = 2;  // Workload query index — scheduling-independent.
  fp::ScopedFailpoint armed("advisor.whatif.optimize", spec);

  std::vector<Result<ConfigurationEvaluator::Evaluation>> results[2];
  std::vector<std::string> stats[2];
  int thread_counts[2] = {1, 4};
  for (int t = 0; t < 2; ++t) {
    Rig rig = MakeRig(thread_counts[t]);
    results[t] = rig.evaluator->EvaluateMany(configs);
    stats[t] = rig.evaluator->DeterministicStats().TextLines("");
  }
  ASSERT_EQ(results[0].size(), configs.size());
  ASSERT_EQ(results[1].size(), configs.size());
  bool saw_injected = false;
  for (size_t i = 0; i < configs.size(); ++i) {
    ASSERT_EQ(results[0][i].ok(), results[1][i].ok()) << "config " << i;
    if (results[0][i].ok()) {
      ExpectIdentical(*results[0][i], *results[1][i]);
      continue;
    }
    // Identical status — code AND message — at both widths. The config
    // owning the first failing what-if task carries query 2's injected
    // error; configs whose tasks all come after it in the deduplicated
    // batch are deterministically kCancelled (sibling cancellation).
    EXPECT_EQ(results[0][i].status().code(), results[1][i].status().code())
        << "config " << i;
    EXPECT_EQ(results[0][i].status().message(),
              results[1][i].status().message())
        << "config " << i;
    if (results[0][i].status().code() == StatusCode::kInternal) {
      saw_injected = true;
      EXPECT_NE(results[0][i].status().message().find("injected"),
                std::string::npos);
    } else {
      EXPECT_TRUE(results[0][i].status().IsCancelled())
          << results[0][i].status().ToString();
    }
  }
  EXPECT_TRUE(saw_injected);
  // Partial trace: the deterministic counter snapshot (evaluations,
  // cost-cache hits/misses, memo hits) is byte-identical.
  EXPECT_EQ(stats[0], stats[1]);
}

// Mid-write failures must never leave a torn output file: writers go
// through a temp file and rename, so the destination either keeps its
// previous content or does not exist.
TEST_F(ParallelEvalTest, InjectedWriteFailureLeavesNoTornFiles) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "xia_torn_write_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Workload file: a good save first, then a failing overwrite.
  fs::path wpath = dir / "w.workload";
  ASSERT_TRUE(SaveWorkloadFile(workload_, wpath.string()).ok());
  std::string before = [&] {
    std::ifstream in(wpath);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  {
    fp::FailSpec spec;
    spec.code = StatusCode::kInternal;
    spec.message = "injected: disk full";
    fp::ScopedFailpoint armed("storage.workload_io.write", spec);
    Status failed = SaveWorkloadFile(workload_, wpath.string());
    EXPECT_FALSE(failed.ok());
  }
  std::string after = [&] {
    std::ifstream in(wpath);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  EXPECT_EQ(before, after);  // Previous content intact, not truncated.
  EXPECT_FALSE(fs::exists(wpath.string() + ".tmp"));  // No stray temp.

  // Collection directory: a failing save leaves no torn doc files.
  fs::path cdir = dir / "coll";
  {
    fp::FailSpec spec;
    spec.code = StatusCode::kInternal;
    spec.message = "injected: disk full";
    fp::ScopedFailpoint armed("storage.collection_io.write", spec);
    Status failed = SaveCollectionToDirectory(db_, "xmark", cdir.string());
    EXPECT_FALSE(failed.ok());
  }
  if (fs::exists(cdir)) {
    for (const fs::directory_entry& entry : fs::directory_iterator(cdir)) {
      EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
      EXPECT_NE(entry.path().extension(), ".xml")
          << "torn document left behind: " << entry.path();
    }
  }
  fs::remove_all(dir);
}

TEST_F(ParallelEvalTest, WhatIfSessionIdenticalAcrossThreads) {
  EvaluateIndexesResult results[2];
  int thread_counts[2] = {1, 4};
  for (int t = 0; t < 2; ++t) {
    WhatIfSession session(&db_, base_catalog_, cost_model_, thread_counts[t]);
    IndexDefinition def;
    def.collection = "xmark";
    def.pattern = P("/site/regions/*/item/quantity");
    def.type = ValueType::kDouble;
    ASSERT_TRUE(session.AddIndex(def).ok());
    Result<EvaluateIndexesResult> r = session.EvaluateWorkload(workload_);
    ASSERT_TRUE(r.ok());
    results[t] = std::move(*r);
  }
  EXPECT_EQ(results[0].total_weighted_cost, results[1].total_weighted_cost);
  EXPECT_EQ(results[0].index_use_counts, results[1].index_use_counts);
  ASSERT_EQ(results[0].plans.size(), results[1].plans.size());
  for (size_t i = 0; i < results[0].plans.size(); ++i) {
    EXPECT_EQ(results[0].plans[i].total_cost, results[1].plans[i].total_cost);
  }
}

}  // namespace
}  // namespace xia
