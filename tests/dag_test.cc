#include <gtest/gtest.h>

#include <set>

#include "advisor/dag.h"
#include "advisor/generalize.h"
#include "xmldata/xmark_gen.h"
#include "xpath/parser.h"

namespace xia {
namespace {

PathPattern P(const std::string& text) {
  Result<PathPattern> p = ParsePathPattern(text);
  EXPECT_TRUE(p.ok()) << text;
  return std::move(*p);
}

class DagTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    ASSERT_TRUE(PopulateXMark(&db_, "xmark", 3, params, 42).ok());
  }

  CandidateIndex Cand(const std::string& pattern,
                      ValueType type = ValueType::kDouble) {
    CandidateIndex c;
    c.def.collection = "xmark";
    c.def.pattern = P(pattern);
    c.def.type = type;
    c.stats = EstimateVirtualIndex(*db_.synopsis("xmark"), c.def,
                                   StorageConstants());
    return c;
  }

  int IndexOf(const std::vector<CandidateIndex>& candidates,
              const std::string& pattern) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].def.pattern.ToString() == pattern) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  Database db_;
  ContainmentCache cache_;
};

TEST_F(DagTest, PaperExampleDagShape) {
  // Build the paper's example DAG: two specific quantity patterns, a
  // price pattern, their generalizations.
  std::vector<CandidateIndex> candidates = {
      Cand("/site/regions/namerica/item/quantity"),
      Cand("/site/regions/africa/item/quantity"),
      Cand("/site/regions/samerica/item/price"),
      Cand("/site/regions/*/item/quantity"),
      Cand("/site/regions/*/item/*"),
  };
  GeneralizationDag dag = GeneralizationDag::Build(candidates, &cache_);

  int namerica = IndexOf(candidates, "/site/regions/namerica/item/quantity");
  int africa = IndexOf(candidates, "/site/regions/africa/item/quantity");
  int price = IndexOf(candidates, "/site/regions/samerica/item/price");
  int star_q = IndexOf(candidates, "/site/regions/*/item/quantity");
  int star_star = IndexOf(candidates, "/site/regions/*/item/*");

  // Single root: the most general pattern.
  EXPECT_EQ(dag.Roots(), (std::vector<int>{star_star}));
  // Leaves: the three basic patterns.
  std::vector<int> leaf_list = dag.Leaves();
  std::set<int> leaves(leaf_list.begin(), leaf_list.end());
  EXPECT_EQ(leaves, (std::set<int>{namerica, africa, price}));
  // star_star's children: star_q and price (immediate), NOT the two
  // quantity leaves (star_q is between).
  std::set<int> root_children(
      dag.nodes()[static_cast<size_t>(star_star)].children.begin(),
      dag.nodes()[static_cast<size_t>(star_star)].children.end());
  EXPECT_EQ(root_children, (std::set<int>{star_q, price}));
  // star_q's children are the two quantity leaves.
  std::set<int> q_children(
      dag.nodes()[static_cast<size_t>(star_q)].children.begin(),
      dag.nodes()[static_cast<size_t>(star_q)].children.end());
  EXPECT_EQ(q_children, (std::set<int>{namerica, africa}));
  // Parent links are the mirror image.
  EXPECT_EQ(dag.nodes()[static_cast<size_t>(star_q)].parents,
            (std::vector<int>{star_star}));
}

TEST_F(DagTest, IncomparableCandidatesAreBothRoots) {
  std::vector<CandidateIndex> candidates = {
      Cand("/site/regions/africa/item/quantity"),
      Cand("/site/people/person/profile/@income"),
  };
  GeneralizationDag dag = GeneralizationDag::Build(candidates, &cache_);
  EXPECT_EQ(dag.Roots().size(), 2u);
  EXPECT_EQ(dag.Leaves().size(), 2u);
  EXPECT_TRUE(dag.nodes()[0].children.empty());
  EXPECT_TRUE(dag.nodes()[1].children.empty());
}

TEST_F(DagTest, TypeSeparatesComponents) {
  std::vector<CandidateIndex> candidates = {
      Cand("/site/regions/*/item/quantity", ValueType::kDouble),
      Cand("/site/regions/africa/item/quantity", ValueType::kVarchar),
  };
  GeneralizationDag dag = GeneralizationDag::Build(candidates, &cache_);
  // Despite pattern containment, differing types mean no edge.
  EXPECT_TRUE(dag.nodes()[0].children.empty());
  EXPECT_TRUE(dag.nodes()[1].parents.empty());
}

TEST_F(DagTest, EndToEndWithGeneralization) {
  std::vector<CandidateIndex> basics = {
      Cand("/site/regions/namerica/item/quantity"),
      Cand("/site/regions/africa/item/quantity"),
      Cand("/site/regions/samerica/item/price"),
  };
  std::vector<CandidateIndex> expanded =
      GeneralizeCandidates(basics, db_, GeneralizeOptions());
  GeneralizationDag dag = GeneralizationDag::Build(expanded, &cache_);
  // Roots are generalized candidates; every basic is reachable from a root.
  for (int root : dag.Roots()) {
    EXPECT_TRUE(expanded[static_cast<size_t>(root)].from_generalization);
  }
  // Each node's parents strictly contain it.
  for (size_t i = 0; i < dag.size(); ++i) {
    for (int parent : dag.nodes()[i].parents) {
      EXPECT_TRUE(
          cache_.Contains(expanded[static_cast<size_t>(parent)].def.pattern,
                          expanded[i].def.pattern));
    }
  }
}

TEST_F(DagTest, DotAndTextRenderings) {
  std::vector<CandidateIndex> candidates = {
      Cand("/site/regions/africa/item/quantity"),
      Cand("/site/regions/*/item/quantity"),
  };
  candidates[1].from_generalization = true;
  GeneralizationDag dag = GeneralizationDag::Build(candidates, &cache_);
  std::string dot = dag.ToDot(candidates);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n0"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  std::string text = dag.ToText(candidates);
  EXPECT_NE(text.find("/site/regions/*/item/quantity"), std::string::npos);
  // The leaf is indented under the root.
  EXPECT_NE(text.find("  /site/regions/africa/item/quantity"),
            std::string::npos);
}

TEST_F(DagTest, EmptyDag) {
  GeneralizationDag dag = GeneralizationDag::Build({}, &cache_);
  EXPECT_EQ(dag.size(), 0u);
  EXPECT_TRUE(dag.Roots().empty());
  EXPECT_TRUE(dag.Leaves().empty());
}

}  // namespace
}  // namespace xia
