#include <gtest/gtest.h>

#include "common/bitmap.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace xia {
namespace {

// ---------------------------------------------------------------- Status.

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("widget");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "widget");
  EXPECT_EQ(s.ToString(), "NotFound: widget");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::ParseError("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  XIA_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Strings.

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(Split(Join(pieces, "/"), '/'), pieces);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("cand42", "cand"));
  EXPECT_FALSE(StartsWith("ca", "cand"));
  EXPECT_TRUE(EndsWith("file.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_EQ(ParseDouble("3.5"), 3.5);
  EXPECT_EQ(ParseDouble(" 42 "), 42.0);
  EXPECT_EQ(ParseDouble("-7"), -7.0);
  EXPECT_FALSE(ParseDouble("3.5x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("Creditcard").has_value());
}

TEST(StringUtilTest, FormatDoubleCompactsIntegers) {
  EXPECT_EQ(FormatDouble(5.0), "5");
  EXPECT_EQ(FormatDouble(-3.0), "-3");
}

TEST(StringUtilTest, FormatBytesUnits) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3.0 * 1024 * 1024), "3.0 MB");
}

// ---------------------------------------------------------------- Random.

TEST(RandomTest, DeterministicFromSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RandomTest, UniformRespectsBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, ZipfSkewsTowardLowRanks) {
  Random rng(7);
  size_t low = 0;
  const int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(100, 1.0) < 10) ++low;
  }
  // Under uniform, ~10%; Zipf(1.0) concentrates far more mass up front.
  EXPECT_GT(low, static_cast<size_t>(kDraws / 4));
}

TEST(RandomTest, ZipfThetaZeroIsUniform) {
  Random rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.Zipf(10, 0.0), 10u);
  }
}

TEST(RandomTest, WordLengthInRange) {
  Random rng(7);
  for (int i = 0; i < 100; ++i) {
    std::string w = rng.Word(3, 8);
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 8u);
  }
}

// ---------------------------------------------------------------- Bitmap.

TEST(BitmapTest, SetTestClear) {
  Bitmap bm(130);
  EXPECT_EQ(bm.size(), 130u);
  EXPECT_TRUE(bm.None());
  bm.Set(0);
  bm.Set(64);
  bm.Set(129);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(129));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_EQ(bm.Count(), 3u);
  bm.Clear(64);
  EXPECT_FALSE(bm.Test(64));
  EXPECT_EQ(bm.Count(), 2u);
}

TEST(BitmapTest, UnionAndIntersection) {
  Bitmap a(10), b(10);
  a.Set(1);
  a.Set(3);
  b.Set(3);
  b.Set(5);
  Bitmap u = a;
  u |= b;
  EXPECT_TRUE(u.Test(1));
  EXPECT_TRUE(u.Test(3));
  EXPECT_TRUE(u.Test(5));
  Bitmap i = a;
  i &= b;
  EXPECT_FALSE(i.Test(1));
  EXPECT_TRUE(i.Test(3));
  EXPECT_EQ(i.Count(), 1u);
}

TEST(BitmapTest, SubsetAndIntersects) {
  Bitmap a(8), b(8);
  a.Set(2);
  b.Set(2);
  b.Set(4);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  Bitmap c(8);
  c.Set(7);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(c.IsSubsetOf(c));
}

TEST(BitmapTest, AllAndEquality) {
  Bitmap a(3);
  a.Set(0);
  a.Set(1);
  EXPECT_FALSE(a.All());
  a.Set(2);
  EXPECT_TRUE(a.All());
  Bitmap b(3);
  b.Set(0);
  b.Set(1);
  b.Set(2);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.ToString(), "111");
}

}  // namespace
}  // namespace xia
