// Scaling: advisor runtime and candidate counts vs. workload size and
// database size — the practicality check a demo audience asks about.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "advisor/advisor.h"
#include "common/string_util.h"
#include "workload/variation.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"

using namespace xia;
using Clock = std::chrono::steady_clock;

namespace {
double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}
}  // namespace

int main() {
  std::cout << "== Scaling: advisor cost vs workload and database size ==\n\n";

  // --- Sweep 1: workload size (fixed 10-doc database). ---
  Database db;
  XMarkParams params;
  if (!PopulateXMark(&db, "xmark", 10, params, 42).ok()) return 1;
  Catalog catalog;

  std::cout << "---- workload-size sweep (10 docs, greedy+heuristics, "
               "256 KB) ----\n";
  std::printf("%8s %10s %10s %8s %8s %10s\n", "queries", "basic",
              "expanded", "chosen", "evals", "time(ms)");
  for (int extra : {0, 10, 20, 40, 65}) {
    Workload workload = MakeXMarkWorkload("xmark");
    Random rng(5);
    Workload synth = MakeXMarkUnseenWorkload("xmark", &rng, extra);
    for (const Query& q : synth.queries()) workload.AddQuery(q);

    AdvisorOptions options;
    options.space_budget_bytes = 256.0 * 1024;
    Advisor advisor(&db, &catalog, options);
    auto t0 = Clock::now();
    Result<Recommendation> rec = advisor.Recommend(workload);
    double ms = MsSince(t0);
    if (!rec.ok()) {
      std::cerr << rec.status().ToString() << "\n";
      return 1;
    }
    std::printf("%8zu %10zu %10zu %8zu %8d %10.1f\n", workload.size(),
                rec->enumeration.candidates.size(), rec->candidates.size(),
                rec->indexes.size(), rec->search.evaluations, ms);
  }

  // --- Sweep 2: database size (fixed workload). ---
  std::cout << "\n---- database-size sweep (15-query workload) ----\n";
  std::printf("%8s %10s %12s %12s %10s\n", "docs", "nodes", "baseline",
              "recommended", "time(ms)");
  for (int docs : {5, 10, 20, 40, 80}) {
    Database scaled;
    if (!PopulateXMark(&scaled, "xmark", docs, params, 42).ok()) return 1;
    Workload workload = MakeXMarkWorkload("xmark");
    Catalog scaled_catalog;
    AdvisorOptions options;
    options.space_budget_bytes = 1024.0 * 1024;
    Advisor advisor(&scaled, &scaled_catalog, options);
    auto t0 = Clock::now();
    Result<Recommendation> rec = advisor.Recommend(workload);
    double ms = MsSince(t0);
    if (!rec.ok()) {
      std::cerr << rec.status().ToString() << "\n";
      return 1;
    }
    std::printf("%8d %10zu %12.0f %12.1f %10.1f\n", docs,
                scaled.GetCollection("xmark")->num_nodes(),
                rec->baseline_cost, rec->recommended_cost, ms);
  }
  std::cout << "\nExpected shape: advisor time grows roughly linearly with "
               "workload size;\nbaseline (scan) cost grows linearly with "
               "database size while recommended\ncost stays near-flat — "
               "the index-benefit gap widens with data volume.\n";
  return 0;
}
