// Shared main() for the google-benchmark harnesses, replacing
// BENCHMARK_MAIN() with one that understands the xia::obs flags:
//
//   --stats-json=PATH   after the run, write the process-wide metrics
//                       registry snapshot (counters/gauges/spans) as JSON
//                       to PATH. CI stores it next to the benchmark JSON
//                       in the BENCH_ci.json artifact, so perf numbers
//                       ship with phase-level attribution.
//   --stats-spans       enable RAII phase spans for the run. Off by
//                       default so timed sections stay unperturbed —
//                       only pass it when investigating, not in CI perf
//                       jobs.
//
// Both flags are stripped before benchmark::Initialize, which rejects
// unknown arguments. Include this header exactly once per bench binary,
// instead of invoking BENCHMARK_MAIN().

#ifndef XIA_BENCH_BENCH_MAIN_H_
#define XIA_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/metrics.h"

int main(int argc, char** argv) {
  std::string stats_json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr char kStatsJson[] = "--stats-json=";
    if (std::strncmp(argv[i], kStatsJson, sizeof(kStatsJson) - 1) == 0) {
      stats_json_path = argv[i] + sizeof(kStatsJson) - 1;
      continue;
    }
    if (std::strcmp(argv[i], "--stats-spans") == 0) {
      xia::obs::SetSpansEnabled(true);
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!stats_json_path.empty()) {
    if (!xia::obs::Registry().WriteJsonFile(stats_json_path)) {
      std::fprintf(stderr, "failed to write stats JSON to %s\n",
                   stats_json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "stats JSON written to %s\n",
                 stats_json_path.c_str());
  }
  return 0;
}

#endif  // XIA_BENCH_BENCH_MAIN_H_
