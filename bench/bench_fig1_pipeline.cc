// Figure 1: the advisor architecture, walked end to end. Prints each
// pipeline stage (candidate generation via //* virtual index, candidate
// generalization, configuration enumeration with optimizer cost
// estimation) with its inputs, outputs, and wall time — the demo's
// architecture walk-through as text.

#include <chrono>
#include <iostream>

#include "advisor/advisor.h"
#include "common/string_util.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"

using namespace xia;
using Clock = std::chrono::steady_clock;

namespace {
double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}
}  // namespace

int main() {
  std::cout << "== Figure 1: XML Index Advisor pipeline ==\n\n";

  auto t0 = Clock::now();
  Database db;
  XMarkParams params;
  Status status = PopulateXMark(&db, "xmark", 15, params, 42);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::cout << "[input] XML database: "
            << db.GetCollection("xmark")->num_docs() << " docs, "
            << db.GetCollection("xmark")->num_nodes() << " nodes, "
            << FormatBytes(
                   static_cast<double>(db.GetCollection("xmark")->ByteSize()))
            << "  (" << FormatDouble(MsSince(t0)) << " ms incl. RUNSTATS)\n";

  Workload workload = MakeXMarkWorkload("xmark");
  AddXMarkUpdates(&workload, "xmark", 0.2);
  std::cout << "[input] workload: " << workload.size() << " queries, "
            << workload.updates().size() << " update ops\n";
  std::cout << "[input] disk space constraint: 256.0 KB\n\n";

  Catalog catalog;
  AdvisorOptions options;
  options.space_budget_bytes = 256.0 * 1024;
  options.algorithm = SearchAlgorithm::kGreedyHeuristic;
  Advisor advisor(&db, &catalog, options);

  auto t1 = Clock::now();
  Result<Recommendation> rec = advisor.Recommend(workload);
  if (!rec.ok()) {
    std::cerr << rec.status().ToString() << "\n";
    return 1;
  }
  double total_ms = MsSince(t1);

  std::cout << "[server] Enumerate Indexes mode ('//*' virtual index): "
            << rec->enumeration.candidates.size()
            << " basic candidates across " << workload.size()
            << " queries\n";
  std::cout << "[client] candidate generalization: +"
            << rec->candidates.size() - rec->enumeration.candidates.size()
            << " generalized candidates (total "
            << rec->candidates.size() << ")\n";
  std::cout << "[client] generalization DAG: " << rec->dag.size()
            << " nodes, " << rec->dag.Roots().size() << " roots, "
            << rec->dag.Leaves().size() << " leaves\n";
  std::cout << "[server] Evaluate Indexes mode: "
            << rec->search.evaluations
            << " configuration evaluations during search\n";
  std::cout << "[output] recommended configuration: "
            << rec->indexes.size() << " indexes, "
            << FormatBytes(rec->total_size_bytes) << "\n\n";
  std::cout << rec->Report() << "\n";
  std::cout << "pipeline wall time: " << FormatDouble(total_ms) << " ms\n";
  return 0;
}
