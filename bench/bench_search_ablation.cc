// Ablation A: search-strategy comparison. Benefit vs. disk budget for
// plain greedy (the relational-advisor baseline), greedy with redundancy
// heuristics, and top-down DAG search, plus redundant-index counts — the
// quantitative case for the paper's two strategies.

#include <cstdio>
#include <iostream>
#include <memory>

#include "advisor/advisor.h"
#include "advisor/benefit.h"
#include "common/string_util.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"

using namespace xia;

int main() {
  std::cout << "== Ablation A: search strategies across disk budgets ==\n\n";

  Database db;
  XMarkParams params;
  if (!PopulateXMark(&db, "xmark", 12, params, 42).ok()) return 1;
  Workload workload = MakeXMarkWorkload("xmark");
  Catalog catalog;

  std::printf("%-10s %-18s %8s %10s %10s %8s %7s %6s\n", "budget",
              "algorithm", "indexes", "size", "benefit", "benef%", "unused",
              "evals");

  for (double budget_kb : {8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0}) {
    for (SearchAlgorithm algo :
         {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyHeuristic,
          SearchAlgorithm::kTopDown}) {
      AdvisorOptions options;
      options.space_budget_bytes = budget_kb * 1024;
      options.algorithm = algo;
      Advisor advisor(&db, &catalog, options);
      Result<Recommendation> rec = advisor.Recommend(workload);
      if (!rec.ok()) {
        std::cerr << rec.status().ToString() << "\n";
        return 1;
      }
      // Count recommended indexes the optimizer never uses (the paper's
      // redundancy problem; the heuristic search should drive this to 0).
      Optimizer optimizer(&db, options.cost_model);
      ConfigurationEvaluator evaluator(&optimizer, &workload, &catalog,
                                       &rec->candidates, advisor.cache(),
                                       options.account_update_cost);
      Result<ConfigurationEvaluator::Evaluation> eval =
          evaluator.Evaluate(rec->search.chosen);
      int unused = 0;
      if (eval.ok()) {
        for (int c : rec->search.chosen) {
          if (eval->used_candidates.count(c) == 0) ++unused;
        }
      }
      double pct = rec->baseline_cost > 0
                       ? 100.0 * rec->benefit / rec->baseline_cost
                       : 0.0;
      std::printf("%-10s %-18s %8zu %10s %10.0f %7.1f%% %7d %6d\n",
                  FormatBytes(budget_kb * 1024).c_str(),
                  SearchAlgorithmName(algo), rec->indexes.size(),
                  FormatBytes(rec->total_size_bytes).c_str(), rec->benefit,
                  pct, unused, rec->search.evaluations);
    }
  }
  std::cout << "\nExpected shape: all algorithms converge at large budgets; "
               "plain greedy\nmay recommend never-used indexes at mid "
               "budgets; top-down trades a little\ntraining benefit for "
               "more general configurations.\n";
  return 0;
}
