// Figure 4: searching the space of candidate indexes — as a
// google-benchmark harness over the three configuration-search
// strategies. The candidate set and generalization DAG are built once (a
// search consumes them read-only, and they are budget independent); each
// iteration runs one full search — a fresh evaluator, so the
// configuration memo and plan cache start cold — at a 128 KB budget. Each
// benchmark sweeps the what-if thread knob (arg 0) and the
// signature-keyed cost cache toggle (arg 1), so `--benchmark_format=json`
// output joins bench_fig3_evaluate in the CI perf artifact: together they
// track the parallel and caching speedups of the paper's Figure 3/4 hot
// paths. Evaluation and cache counters are reported per row.

#include <benchmark/benchmark.h>

#include <memory>
#include <utility>

#include "advisor/advisor.h"
#include "advisor/benefit.h"
#include "advisor/search_greedy_heuristic.h"
#include "advisor/search_topdown.h"
#include "common/logging.h"
#include "common/random.h"
#include "wlm/compress.h"
#include "wlm/fingerprint.h"
#include "workload/variation.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"

namespace xia {
namespace {

/// Shared fixture, built once: XMark scale 12 (the demo's Figure 4
/// setup), the enumerated + generalized candidate set, and its DAG. The
/// workload is the XMark set repeated several times, as in
/// bench_fig3_evaluate — repeated queries are what real workloads look
/// like and what the cost cache's query-fingerprint classes collapse. The
/// containment cache is shared too — by the time the real advisor
/// searches, enumeration and DAG construction have already warmed it.
struct Fixture {
  Database db;
  Workload workload;
  Catalog catalog;
  CostModel cost_model;
  ContainmentCache cache;
  std::unique_ptr<Optimizer> optimizer;
  std::vector<CandidateIndex> candidates;
  GeneralizationDag dag;

  Fixture() {
    XMarkParams params;
    XIA_CHECK(PopulateXMark(&db, "xmark", 12, params, 42).ok());
    Workload base = MakeXMarkWorkload("xmark");
    for (int rep = 0; rep < 6; ++rep) {
      for (const Query& q : base.queries()) workload.AddQuery(q);
    }
    optimizer = std::make_unique<Optimizer>(&db, cost_model);
    Result<EnumerationResult> enumerated =
        EnumerateBasicCandidates(db, workload, &cache);
    XIA_CHECK(enumerated.ok());
    candidates =
        GeneralizeCandidates(enumerated->candidates, db, GeneralizeOptions());
    dag = GeneralizationDag::Build(candidates, &cache);
  }
};

Fixture* SharedFixture() {
  static Fixture* fixture = new Fixture();
  return fixture;
}

Result<SearchResult> RunOne(const Fixture& f, ConfigurationEvaluator* evaluator,
                            SearchAlgorithm algorithm,
                            const SearchOptions& options) {
  switch (algorithm) {
    case SearchAlgorithm::kGreedy:
      return GreedySearch(evaluator, options);
    case SearchAlgorithm::kGreedyHeuristic:
      return GreedyHeuristicSearch(evaluator, options);
    case SearchAlgorithm::kTopDown:
      return TopDownSearch(f.dag, evaluator, options);
  }
  return Status::Internal("unknown search algorithm");
}

/// One full configuration search at a 128 KB budget. A fresh evaluator
/// per iteration means cold memo and cold plan cache every run: cache-on
/// numbers measure within-search reuse (searches revisit overlapping
/// configurations), not warm steady state.
void RunSearch(benchmark::State& state, SearchAlgorithm algorithm) {
  Fixture& f = *SharedFixture();
  int threads = static_cast<int>(state.range(0));
  bool cache_on = state.range(1) != 0;
  SearchOptions options;
  options.space_budget_bytes = 128.0 * 1024;
  SearchResult last;
  for (auto _ : state) {
    ConfigurationEvaluator evaluator(f.optimizer.get(), &f.workload,
                                     &f.catalog, &f.candidates, &f.cache,
                                     /*account_update_cost=*/true, threads,
                                     cache_on);
    Result<SearchResult> result = RunOne(f, &evaluator, algorithm, options);
    XIA_CHECK(result.ok());
    benchmark::DoNotOptimize(result->benefit);
    last = std::move(*result);
  }
  state.counters["evaluations"] = static_cast<double>(last.evaluations);
  state.counters["chosen"] = static_cast<double>(last.chosen.size());
  state.counters["cost_hits"] = static_cast<double>(last.counters.cost.hits);
  state.counters["cost_misses"] =
      static_cast<double>(last.counters.cost.misses);
  state.counters["cost_bypasses"] =
      static_cast<double>(last.counters.cost.bypasses);
}

void BM_SearchGreedy(benchmark::State& state) {
  RunSearch(state, SearchAlgorithm::kGreedy);
}

void BM_SearchGreedyHeuristic(benchmark::State& state) {
  RunSearch(state, SearchAlgorithm::kGreedyHeuristic);
}

void BM_SearchTopDown(benchmark::State& state) {
  RunSearch(state, SearchAlgorithm::kTopDown);
}

BENCHMARK(BM_SearchGreedy)
    ->ArgNames({"threads", "cache"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SearchGreedyHeuristic)
    ->ArgNames({"threads", "cache"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SearchTopDown)
    ->ArgNames({"threads", "cache"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Compressed-vs-raw advising sweep (xia::wlm): the fixture's 6×-repeated
/// workload as a capture log, advised either record-by-record (compress=0:
/// one weight-1 query per execution) or folded into weighted templates
/// (compress=1). Rows land in the same CI JSON as the search sweeps above;
/// `cost_requests` is the per-query what-if traffic compression saves and
/// `advised_queries` the workload size the advisor actually chewed on.
const std::vector<wlm::CaptureRecord>& SharedCaptureLog() {
  static std::vector<wlm::CaptureRecord>* log = [] {
    Fixture& f = *SharedFixture();
    auto* records = new std::vector<wlm::CaptureRecord>();
    uint64_t seq = 0;
    for (const Query& q : f.workload.queries()) {
      Result<QueryPlan> plan = f.optimizer->Optimize(q, f.catalog, &f.cache);
      XIA_CHECK(plan.ok());
      wlm::CaptureRecord r;
      r.seq = seq++;
      r.text = q.text;
      r.fingerprint = wlm::TemplateFingerprint(q);
      r.est_cost = plan->total_cost;
      records->push_back(std::move(r));
    }
    return records;
  }();
  return *log;
}

void BM_AdviseFromLog(benchmark::State& state) {
  Fixture& f = *SharedFixture();
  bool compress = state.range(0) != 0;
  bool decompose = state.range(2) != 0;
  Workload advised;
  if (compress) {
    Result<wlm::CompressedWorkload> compressed =
        wlm::CompressLog(SharedCaptureLog());
    XIA_CHECK(compressed.ok());
    advised = std::move(compressed->workload);
  } else {
    Result<Workload> raw = wlm::WorkloadFromLog(SharedCaptureLog());
    XIA_CHECK(raw.ok());
    advised = std::move(*raw);
  }
  AdvisorOptions options;
  options.space_budget_bytes = 128.0 * 1024;
  options.threads = static_cast<int>(state.range(1));
  options.decompose.enabled = decompose;
  Recommendation last;
  for (auto _ : state) {
    Advisor advisor(&f.db, &f.catalog, options);
    Result<Recommendation> rec = advisor.Recommend(advised);
    XIA_CHECK(rec.ok());
    benchmark::DoNotOptimize(rec->benefit);
    last = std::move(*rec);
  }
  state.counters["advised_queries"] = static_cast<double>(advised.size());
  state.counters["cost_requests"] =
      static_cast<double>(last.search.counters.cost.hits +
                          last.search.counters.cost.misses +
                          last.search.counters.cost.bypasses);
  state.counters["benefit_priced"] =
      static_cast<double>(last.search.counters.benefit.priced);
  state.counters["chosen"] = static_cast<double>(last.indexes.size());
}

BENCHMARK(BM_AdviseFromLog)
    ->ArgNames({"compress", "threads", "decompose"})
    ->Args({0, 1, 0})
    ->Args({1, 1, 0})
    ->Args({0, 4, 0})
    ->Args({1, 4, 0})
    ->Args({1, 1, 1})
    ->Args({1, 4, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Decomposed-vs-exact advising sweep over template count. A synthetic
/// capture log — the 15 XMark demo queries plus literal-varied unseen
/// templates, each "executed" a few times — is folded by wlm compression
/// and advised with the atomic-benefit table on or off. The point of the
/// sweep is the call-count asymptotics, not per-call latency: exact
/// scoring issues O(queries × configurations) what-if requests, while the
/// priced table holds requests near O(queries + indexes), so the
/// `whatif_requests` ratio between paired decompose:0/decompose:1 rows
/// widens with the template count (the regression gate holds the 10k row
/// to ≥10×). A small scale-6 database keeps the exact 10k row affordable;
/// Iterations(1) because the counters are deterministic and one exact
/// 10k-template advise is already seconds of optimizer work.
constexpr int kTemplateSweepMax = 10000;
constexpr int kTemplateLogRepeats = 3;

struct TemplateFixture {
  Database db;
  Catalog catalog;
  /// Template-major: kTemplateLogRepeats consecutive records per
  /// template, so a prefix slice of 3·N records is an N-template log.
  std::vector<wlm::CaptureRecord> log;

  TemplateFixture() {
    XMarkParams params;
    XIA_CHECK(PopulateXMark(&db, "xmark", 6, params, 42).ok());
    Workload templates = MakeXMarkWorkload("xmark");
    Random rng(7);
    Workload unseen = MakeXMarkUnseenWorkload(
        "xmark", &rng, kTemplateSweepMax - static_cast<int>(templates.size()));
    for (const Query& q : unseen.queries()) templates.AddQuery(q);
    uint64_t seq = 0;
    for (const Query& q : templates.queries()) {
      for (int rep = 0; rep < kTemplateLogRepeats; ++rep) {
        wlm::CaptureRecord r;
        r.seq = seq++;
        r.text = q.text;
        // Literal-varied templates are distinct advising classes, so the
        // synthetic log fingerprints by full text (identical texts still
        // fold). Unit est_cost: the sweep measures call counts and the
        // equal weights keep every template through compression.
        r.fingerprint = q.text;
        r.est_cost = 1.0;
        log.push_back(std::move(r));
      }
    }
  }
};

TemplateFixture* SharedTemplateFixture() {
  static TemplateFixture* fixture = new TemplateFixture();
  return fixture;
}

void BM_AdviseTemplates(benchmark::State& state) {
  TemplateFixture& f = *SharedTemplateFixture();
  size_t templates = static_cast<size_t>(state.range(0));
  bool decompose = state.range(1) != 0;
  std::vector<wlm::CaptureRecord> slice(
      f.log.begin(),
      f.log.begin() + templates * static_cast<size_t>(kTemplateLogRepeats));
  Result<wlm::CompressedWorkload> compressed = wlm::CompressLog(slice);
  XIA_CHECK(compressed.ok());
  AdvisorOptions options;
  options.space_budget_bytes = 128.0 * 1024;
  options.threads = 1;
  options.decompose.enabled = decompose;
  Recommendation last;
  for (auto _ : state) {
    Advisor advisor(&f.db, &f.catalog, options);
    Result<Recommendation> rec = advisor.Recommend(compressed->workload);
    XIA_CHECK(rec.ok());
    benchmark::DoNotOptimize(rec->benefit);
    last = std::move(*rec);
  }
  const AdvisorCacheCounters& c = last.search.counters;
  state.counters["advised_templates"] =
      static_cast<double>(compressed->workload.size());
  state.counters["whatif_requests"] =
      static_cast<double>(c.cost.hits + c.cost.misses + c.cost.bypasses);
  state.counters["optimizer_runs"] =
      static_cast<double>(c.cost.misses + c.cost.bypasses);
  state.counters["benefit_priced"] = static_cast<double>(c.benefit.priced);
  state.counters["benefit_table_hits"] =
      static_cast<double>(c.benefit.table_hits);
  state.counters["benefit_composed"] = static_cast<double>(c.benefit.composed);
  state.counters["benefit_fallbacks"] =
      static_cast<double>(c.benefit.fallback_whatifs);
  state.counters["promised_benefit"] = last.benefit;
  state.counters["chosen"] = static_cast<double>(last.indexes.size());
}

BENCHMARK(BM_AdviseTemplates)
    ->ArgNames({"templates", "decompose"})
    ->Args({15, 0})
    ->Args({15, 1})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xia

#include "bench_main.h"  // Custom main: BENCHMARK_MAIN + --stats-json.
