// Figure 4: searching the space of candidate indexes. Prints the
// generalization DAG and the traversal traces of both search algorithms
// across a disk-budget sweep — what the demo animates.

#include <iostream>

#include "advisor/advisor.h"
#include "common/string_util.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"

using namespace xia;

int main() {
  std::cout << "== Figure 4: candidate space search ==\n\n";

  Database db;
  XMarkParams params;
  if (!PopulateXMark(&db, "xmark", 12, params, 42).ok()) return 1;
  Workload workload = MakeXMarkWorkload("xmark");
  Catalog catalog;

  // Show the DAG once (it is budget independent).
  {
    AdvisorOptions options;
    options.space_budget_bytes = 1e12;
    Advisor advisor(&db, &catalog, options);
    Result<Recommendation> rec = advisor.Recommend(workload);
    if (!rec.ok()) {
      std::cerr << rec.status().ToString() << "\n";
      return 1;
    }
    std::cout << "Expanded candidate set: " << rec->candidates.size()
              << " (" << rec->enumeration.candidates.size()
              << " basic + "
              << rec->candidates.size() - rec->enumeration.candidates.size()
              << " generalized)\n\nGeneralization DAG:\n"
              << rec->dag.ToText(rec->candidates) << "\n";
  }

  for (double budget_kb : {32.0, 128.0, 512.0}) {
    for (SearchAlgorithm algo :
         {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyHeuristic,
          SearchAlgorithm::kTopDown}) {
      AdvisorOptions options;
      options.space_budget_bytes = budget_kb * 1024;
      options.algorithm = algo;
      Advisor advisor(&db, &catalog, options);
      Result<Recommendation> rec = advisor.Recommend(workload);
      if (!rec.ok()) {
        std::cerr << rec.status().ToString() << "\n";
        return 1;
      }
      std::cout << "---- " << SearchAlgorithmName(algo) << " @ "
                << FormatBytes(budget_kb * 1024) << " ----\n"
                << rec->search.TraceString() << "chosen: "
                << rec->indexes.size() << " indexes, "
                << FormatBytes(rec->total_size_bytes) << ", benefit "
                << FormatDouble(rec->benefit) << " ("
                << rec->search.evaluations << " evaluations)\n\n";
    }
  }
  return 0;
}
