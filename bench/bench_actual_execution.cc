// Section 3, final bullet: create the recommended configuration for real
// and display actual execution times — estimated improvements must be
// mirrored by measured ones (no-index scans vs physical index plans).

#include <cstdio>
#include <iostream>

#include "advisor/advisor.h"
#include "advisor/analysis.h"
#include "common/string_util.h"
#include "exec/executor.h"
#include "workload/tpox_queries.h"
#include "workload/xmark_queries.h"
#include "xmldata/tpox_gen.h"
#include "xmldata/xmark_gen.h"

using namespace xia;

namespace {

int RunScenario(Database* db, const Workload& workload, const char* label,
                double budget_bytes) {
  Catalog catalog;
  AdvisorOptions options;
  options.space_budget_bytes = budget_bytes;
  options.algorithm = SearchAlgorithm::kGreedyHeuristic;
  Advisor advisor(db, &catalog, options);
  Result<Recommendation> rec = advisor.Recommend(workload);
  if (!rec.ok()) {
    std::cerr << rec.status().ToString() << "\n";
    return 1;
  }
  Result<double> built = MaterializeConfiguration(
      *db, rec->indexes, &catalog, options.cost_model.storage);
  if (!built.ok()) {
    std::cerr << built.status().ToString() << "\n";
    return 1;
  }

  std::cout << "---- " << label << ": " << rec->indexes.size()
            << " indexes materialized (" << FormatBytes(*built)
            << " actual, " << FormatBytes(rec->total_size_bytes)
            << " estimated) ----\n";
  std::printf("%-6s %12s %12s %9s %12s %12s %8s\n", "query", "scan(us)",
              "indexed(us)", "speedup", "scan-pages", "idx-pages", "rows");

  Optimizer optimizer(db, options.cost_model);
  Executor executor(db, &catalog, options.cost_model);
  Catalog empty;
  double scan_total = 0;
  double idx_total = 0;
  for (const Query& query : workload.queries()) {
    Result<QueryPlan> scan_plan =
        optimizer.Optimize(query, empty, advisor.cache());
    Result<QueryPlan> idx_plan =
        optimizer.Optimize(query, catalog, advisor.cache());
    if (!scan_plan.ok() || !idx_plan.ok()) return 1;
    Result<ExecResult> scan_run = executor.Execute(*scan_plan);
    Result<ExecResult> idx_run = executor.Execute(*idx_plan);
    if (!scan_run.ok() || !idx_run.ok()) {
      std::cerr << "execution failed for " << query.id << "\n";
      return 1;
    }
    scan_total += scan_run->wall_micros;
    idx_total += idx_run->wall_micros;
    std::printf("%-6s %12.0f %12.0f %8.1fx %12.0f %12.1f %8zu\n",
                query.id.c_str(), scan_run->wall_micros,
                idx_run->wall_micros,
                scan_run->wall_micros / std::max(idx_run->wall_micros, 1.0),
                scan_run->simulated_page_reads,
                idx_run->simulated_page_reads, idx_run->nodes.size());
  }
  std::printf("%-6s %12.0f %12.0f %8.1fx\n\n", "TOTAL", scan_total,
              idx_total, scan_total / std::max(idx_total, 1.0));
  return 0;
}

}  // namespace

int main() {
  std::cout << "== Actual execution with the recommended configuration ==\n\n";

  Database xmark_db;
  XMarkParams xmark_params;
  if (!PopulateXMark(&xmark_db, "xmark", 20, xmark_params, 42).ok()) {
    return 1;
  }
  if (RunScenario(&xmark_db, MakeXMarkWorkload("xmark"), "XMark",
                  512.0 * 1024)) {
    return 1;
  }

  Database tpox_db;
  TpoxParams tpox_params;
  if (!PopulateTpox(&tpox_db, 100, 200, 40, tpox_params, 11).ok()) return 1;
  return RunScenario(&tpox_db, MakeTpoxWorkload(), "TPoX", 512.0 * 1024);
}
