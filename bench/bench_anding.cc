// IXAND ablation: single-index vs two-index intersection plans across
// predicate selectivities. The crossover demonstrates why DB2's optimizer
// (and ours) keeps both plan shapes: with one selective predicate a single
// probe wins; with two, intersecting RID sets avoids fetching and
// re-checking the larger candidate set.

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/string_util.h"
#include "exec/executor.h"
#include "index/index_builder.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "xmldata/xmark_gen.h"
#include "xpath/parser.h"

using namespace xia;

int main() {
  std::cout << "== IXAND ablation: one probe vs intersected probes ==\n\n";

  Database db;
  XMarkParams params;
  if (!PopulateXMark(&db, "xmark", 60, params, 42).ok()) return 1;

  Catalog catalog;
  CostModel cost_model;
  for (const auto& [name, pattern] :
       std::vector<std::pair<std::string, std::string>>{
           {"q_idx", "/site/regions/africa/item/quantity"},
           {"p_idx", "/site/regions/africa/item/price"}}) {
    IndexDefinition def;
    def.name = name;
    def.collection = "xmark";
    Result<PathPattern> p = ParsePathPattern(pattern);
    if (!p.ok()) return 1;
    def.pattern = *p;
    def.type = ValueType::kDouble;
    Result<PathIndex> built = BuildIndex(db, def);
    if (!built.ok()) return 1;
    if (!catalog
             .AddPhysical(std::make_shared<PathIndex>(std::move(*built)),
                          cost_model.storage)
             .ok()) {
      return 1;
    }
  }

  ContainmentCache cache;
  Optimizer with_anding(&db, cost_model, OptimizerOptions{true});
  Optimizer without_anding(&db, cost_model, OptimizerOptions{false});
  Executor executor(&db, &catalog, cost_model);

  std::printf("%-28s %12s %12s %8s %10s %10s\n",
              "predicates (quantity,price)", "single-cost", "ixand-cost",
              "chosen", "single-us", "ixand-us");
  // Sweep quantity threshold (selectivity of predicate 1) against a fixed
  // moderately selective price predicate.
  for (int q_threshold : {1, 3, 5, 7, 9}) {
    std::string text =
        "for $i in doc(\"xmark\")/site/regions/africa/item where "
        "$i/quantity > " +
        std::to_string(q_threshold) + " and $i/price < 100 return $i/name";
    Result<Query> query = ParseQuery(text);
    if (!query.ok()) return 1;
    query->id = "q>" + std::to_string(q_threshold);

    Result<QueryPlan> single =
        without_anding.Optimize(*query, catalog, &cache);
    Result<QueryPlan> anded = with_anding.Optimize(*query, catalog, &cache);
    if (!single.ok() || !anded.ok()) return 1;

    Result<ExecResult> single_run = executor.Execute(*single);
    Result<ExecResult> anded_run = executor.Execute(*anded);
    if (!single_run.ok() || !anded_run.ok()) return 1;
    if (single_run->nodes != anded_run->nodes) {
      std::cerr << "RESULT MISMATCH at q>" << q_threshold << "\n";
      return 1;
    }

    std::printf("%-28s %12.2f %12.2f %8s %10.1f %10.1f\n",
                ("quantity>" + std::to_string(q_threshold) + ", price<100")
                    .c_str(),
                single->total_cost, anded->total_cost,
                anded->access.has_secondary ? "IXAND" : "single",
                single_run->wall_micros, anded_run->wall_micros);
  }
  std::cout << "\nExpected shape: the anding-enabled optimizer never costs "
               "worse than the\nsingle-probe one, switches to IXAND when "
               "both predicates prune, and both\nplans return identical "
               "results.\n";
  return 0;
}
