// Ablation B: candidate generalization and update-cost accounting.
//  (1) Generalization ON vs OFF. Training sees only three regions; the
//      unseen workload draws from all six, so exact (basic) candidate
//      indexes cannot cover it while generalized ones
//      (/site/regions/*/item/...) can — the paper's Top Down motivation.
//  (2) Update-cost accounting ON vs OFF across update rates — with
//      accounting on, heavy update load debits wide indexes and shrinks
//      the recommended configuration.

#include <cstdio>
#include <iostream>

#include "advisor/advisor.h"
#include "advisor/analysis.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "workload/variation.h"
#include "workload/xmark_queries.h"
#include "xmldata/docgen.h"
#include "xmldata/xmark_gen.h"

using namespace xia;

namespace {

/// Training workload confined to three regions (namerica, africa,
/// samerica) — the paper's running example, with the other three regions
/// held out for the unseen evaluation.
Workload MakeHeldOutTrainingWorkload() {
  Workload w;
  auto add = [&w](const std::string& text, double weight) {
    Status status = w.AddQueryText(text, weight);
    XIA_CHECK(status.ok());
  };
  add("for $i in doc(\"xmark\")/site/regions/namerica/item "
      "where $i/quantity > 5 return $i/name",
      3.0);
  add("for $i in doc(\"xmark\")/site/regions/africa/item "
      "where $i/quantity > 2 return $i/name",
      2.0);
  add("for $i in doc(\"xmark\")/site/regions/samerica/item "
      "where $i/price < 50 return $i/name",
      2.0);
  add("for $i in doc(\"xmark\")/site/regions/namerica/item "
      "where $i/payment = \"Creditcard\" return $i/name",
      1.0);
  add("for $p in doc(\"xmark\")/site/people/person "
      "where $p/profile/@income >= 80000 return $p/name",
      1.0);
  return w;
}

/// Unseen workload drawn exclusively from the held-out regions, so basic
/// (exact) candidates from training cannot serve any of it.
Workload MakeHeldOutUnseenWorkload(Random* rng, int count) {
  Workload w;
  const std::vector<std::string> held_out = {"asia", "australia", "europe"};
  for (int i = 0; i < count; ++i) {
    const std::string& region = held_out[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(held_out.size()) - 1))];
    std::string text;
    switch (rng->Uniform(0, 2)) {
      case 0:
        text = "for $i in doc(\"xmark\")/site/regions/" + region +
               "/item where $i/quantity > " +
               std::to_string(rng->Uniform(1, 9)) + " return $i/name";
        break;
      case 1:
        text = "for $i in doc(\"xmark\")/site/regions/" + region +
               "/item where $i/price < " +
               std::to_string(rng->Uniform(20, 400)) + " return $i/name";
        break;
      default:
        text = "for $i in doc(\"xmark\")/site/regions/" + region +
               "/item where $i/payment = \"" +
               rng->Choice(docgen::PaymentKinds()) + "\" return $i/name";
        break;
    }
    Status status = w.AddQueryText(text, 1.0, "U" + std::to_string(i + 1));
    XIA_CHECK(status.ok());
  }
  return w;
}

}  // namespace

int main() {
  std::cout << "== Ablation B: generalization and update cost ==\n\n";

  Database db;
  XMarkParams params;
  if (!PopulateXMark(&db, "xmark", 12, params, 42).ok()) return 1;
  Workload training = MakeHeldOutTrainingWorkload();
  Random rng(99);
  Workload unseen = MakeHeldOutUnseenWorkload(&rng, 18);
  Catalog catalog;

  std::cout << "---- (1) generalization on/off; training sees 3 regions, "
               "unseen uses the other 3 ----\n";
  std::printf("%-16s %-18s %8s %12s %14s %14s\n", "generalization",
              "algorithm", "indexes", "train-cost", "unseen-cost",
              "unseen-gain%");
  double unseen_baseline = 0;
  {
    AdvisorOptions options;
    Advisor probe(&db, &catalog, options);
    Result<EvaluateIndexesResult> none = EvaluateConfigurationOnWorkload(
        db, catalog, {}, unseen, options.cost_model, probe.cache());
    if (!none.ok()) return 1;
    unseen_baseline = none->total_weighted_cost;
  }
  for (SearchAlgorithm algo :
       {SearchAlgorithm::kGreedyHeuristic, SearchAlgorithm::kTopDown}) {
    for (bool generalize : {false, true}) {
      AdvisorOptions options;
      options.space_budget_bytes = 192.0 * 1024;
      options.algorithm = algo;
      options.enable_generalization = generalize;
      Advisor advisor(&db, &catalog, options);
      Result<Recommendation> rec = advisor.Recommend(training);
      if (!rec.ok()) {
        std::cerr << rec.status().ToString() << "\n";
        return 1;
      }
      Result<EvaluateIndexesResult> on_unseen =
          EvaluateConfigurationOnWorkload(db, catalog, rec->indexes, unseen,
                                          options.cost_model,
                                          advisor.cache());
      if (!on_unseen.ok()) return 1;
      double gain = 100.0 *
                    (unseen_baseline - on_unseen->total_weighted_cost) /
                    unseen_baseline;
      std::printf("%-16s %-18s %8zu %12.0f %14.0f %13.1f%%\n",
                  generalize ? "on" : "off", SearchAlgorithmName(algo),
                  rec->indexes.size(), rec->recommended_cost,
                  on_unseen->total_weighted_cost, gain);
    }
  }

  std::cout << "\n---- (2) update-rate sweep, greedy+heuristics, 256 KB "
               "budget ----\n";
  std::printf("%-12s %-12s %8s %10s %12s %12s\n", "update-rate",
              "accounting", "indexes", "size", "query-gain", "update-cost");
  for (double rate : {0.0, 1000.0, 10000.0, 100000.0}) {
    for (bool account : {false, true}) {
      Workload w = MakeXMarkWorkload("xmark");
      AddXMarkUpdates(&w, "xmark", rate);
      AdvisorOptions options;
      options.space_budget_bytes = 256.0 * 1024;
      options.algorithm = SearchAlgorithm::kGreedyHeuristic;
      options.account_update_cost = account;
      Advisor advisor(&db, &catalog, options);
      Result<Recommendation> rec = advisor.Recommend(w);
      if (!rec.ok()) {
        std::cerr << rec.status().ToString() << "\n";
        return 1;
      }
      std::printf("%-12s %-12s %8zu %10s %12.0f %12.1f\n",
                  FormatDouble(rate).c_str(), account ? "on" : "off",
                  rec->indexes.size(),
                  FormatBytes(rec->total_size_bytes).c_str(),
                  rec->baseline_cost - rec->recommended_cost,
                  rec->update_cost);
    }
  }
  std::cout << "\nExpected shape: with generalization ON the configuration "
               "keeps helping the\nsix-region unseen workload (OFF only "
               "covers the trained regions); with\naccounting ON, rising "
               "update rates shrink or cheapen the configuration.\n";
  return 0;
}
