// Maintenance validation: the advisor debits configurations by an
// *estimated* per-update index-maintenance cost. This harness performs
// the updates for real through xia::dml — whole-document inserts,
// deletes, and updates against physical indexes — and surfaces both the
// synopsis-estimated entries touched and the measured ones as benchmark
// counters, so CI's regression gate pins the estimate/measurement
// agreement alongside the timings. Counters are deterministic (seeded
// generator, Iterations(1)); timings are the informational part.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "dml/dml.h"
#include "index/index_builder.h"
#include "optimizer/cost_model.h"
#include "xml/serializer.h"
#include "xmldata/xmark_gen.h"
#include "xpath/parser.h"

namespace xia {
namespace {

struct Spec {
  const char* pattern;
  ValueType type;
};

constexpr Spec kSpecs[] = {
    {"/site/regions/*/item/quantity", ValueType::kDouble},
    {"/site/regions/*/item", ValueType::kVarchar},
    {"/site/open_auctions/open_auction/bidder/increase", ValueType::kDouble},
    {"/site/people/person/profile/@income", ValueType::kDouble},
    {"//date", ValueType::kVarchar},
};

/// A fresh xmark database with the index set under maintenance plus a
/// batch of pre-serialized documents to insert. Rebuilt per benchmark
/// run so counters never depend on a previous run's mutations.
struct Fixture {
  Database db;
  Catalog catalog;
  CostModel cost_model;
  std::vector<std::string> batch;

  explicit Fixture(int batch_size) {
    XMarkParams params;
    XIA_CHECK(PopulateXMark(&db, "xmark", 10, params, 42).ok());
    for (const Spec& spec : kSpecs) {
      IndexDefinition def;
      def.collection = "xmark";
      def.pattern = *ParsePathPattern(spec.pattern);
      def.type = spec.type;
      def.name = catalog.UniqueName(def.pattern);
      Result<PathIndex> built = BuildIndex(db, def);
      XIA_CHECK(built.ok());
      XIA_CHECK(catalog
                    .AddPhysical(std::make_shared<PathIndex>(std::move(*built)),
                                 cost_model.storage)
                    .ok());
    }
    Random rng(123);
    for (int i = 0; i < batch_size; ++i) {
      batch.push_back(SerializeDocument(
          GenerateXMarkDocument(db.mutable_names(), params, &rng),
          db.names()));
    }
  }

  /// The advisor's estimate of index entries touched by inserting one
  /// /site document: sum over indexes of subtree overlap / target count.
  double EstimatedEntriesPerInsert() const {
    const PathSynopsis* synopsis = db.synopsis("xmark");
    PathPattern target = *ParsePathPattern("/site");
    double target_count = synopsis->EstimateCount(target);
    double est = 0;
    for (const CatalogEntry* entry : catalog.AllIndexes()) {
      double overlap =
          synopsis->EstimateSubtreeOverlap(target, entry->def.pattern);
      est += target_count > 0 ? overlap / target_count : overlap;
    }
    return est;
  }
};

/// Whole-document inserts followed by deletes of the same documents —
/// the full dml round trip (parse, index maintenance, synopsis deltas,
/// tombstones). entries_inserted must equal entries_removed exactly.
void BM_MaintenanceInsertDelete(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Fixture f(batch);
  const double est_per_insert = f.EstimatedEntriesPerInsert();
  size_t inserted = 0;
  size_t removed = 0;
  for (auto _ : state) {
    std::vector<DocId> fresh;
    for (const std::string& xml : f.batch) {
      Result<dml::DmlResult> r =
          dml::ApplyInsert(&f.db, &f.catalog, "xmark", xml);
      XIA_CHECK(r.ok());
      inserted += r->maintenance.entries_inserted;
      fresh.push_back(r->doc);
    }
    for (DocId doc : fresh) {
      Result<dml::DmlResult> r =
          dml::ApplyDelete(&f.db, &f.catalog, "xmark", doc);
      XIA_CHECK(r.ok());
      removed += r->maintenance.entries_removed;
    }
  }
  XIA_CHECK(inserted == removed);
  state.counters["entries_inserted"] = static_cast<double>(inserted);
  state.counters["entries_removed"] = static_cast<double>(removed);
  state.counters["est_entries"] = est_per_insert * batch;
  state.counters["docs"] = static_cast<double>(batch);
}
// Iterations(1) keeps the counters deterministic: adaptive iteration
// counts would otherwise scale the totals (and trip the synopsis
// staleness rebuild a data-dependent number of times).
BENCHMARK(BM_MaintenanceInsertDelete)
    ->ArgName("docs")
    ->Arg(5)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// In-place document replacement: tombstone + reinsert under one verb.
void BM_MaintenanceUpdate(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Fixture f(batch);
  size_t inserted = 0;
  size_t removed = 0;
  for (auto _ : state) {
    DocId target = 0;
    for (const std::string& xml : f.batch) {
      Result<dml::DmlResult> r =
          dml::ApplyUpdate(&f.db, &f.catalog, "xmark", target, xml);
      XIA_CHECK(r.ok());
      inserted += r->maintenance.entries_inserted;
      removed += r->maintenance.entries_removed;
      target = r->doc;  // Chain: each update replaces the previous one.
    }
  }
  state.counters["entries_inserted"] = static_cast<double>(inserted);
  state.counters["entries_removed"] = static_cast<double>(removed);
  state.counters["docs"] = static_cast<double>(batch);
}
BENCHMARK(BM_MaintenanceUpdate)
    ->ArgName("docs")
    ->Arg(5)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xia

#include "bench_main.h"  // Custom main: BENCHMARK_MAIN + --stats-json.
