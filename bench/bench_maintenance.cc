// Maintenance validation: the advisor debits configurations by an
// *estimated* per-update index-maintenance cost. This harness performs the
// updates for real — inserting generated documents and deleting old ones
// against physical indexes — and compares the estimated entries-touched
// per operation with the measured ones.

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/string_util.h"
#include "index/index_builder.h"
#include "index/maintenance.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"
#include "xpath/parser.h"

using namespace xia;

int main() {
  std::cout << "== Update-cost model vs actual index maintenance ==\n\n";

  Database db;
  XMarkParams params;
  if (!PopulateXMark(&db, "xmark", 10, params, 42).ok()) return 1;
  const PathSynopsis* synopsis = db.synopsis("xmark");
  StorageConstants constants;
  Catalog catalog;

  struct Spec {
    const char* pattern;
    ValueType type;
  };
  const Spec specs[] = {
      {"/site/regions/*/item/quantity", ValueType::kDouble},
      {"/site/regions/*/item", ValueType::kVarchar},
      {"/site/open_auctions/open_auction/bidder/increase",
       ValueType::kDouble},
      {"/site/people/person/profile/@income", ValueType::kDouble},
      {"//date", ValueType::kVarchar},
  };
  for (const Spec& spec : specs) {
    IndexDefinition def;
    def.collection = "xmark";
    Result<PathPattern> pattern = ParsePathPattern(spec.pattern);
    if (!pattern.ok()) return 1;
    def.pattern = std::move(*pattern);
    def.type = spec.type;
    def.name = catalog.UniqueName(def.pattern);
    Result<PathIndex> built = BuildIndex(db, def);
    if (!built.ok()) return 1;
    if (!catalog
             .AddPhysical(std::make_shared<PathIndex>(std::move(*built)),
                          constants)
             .ok()) {
      return 1;
    }
  }

  // The update op under study: inserting whole documents (the coarsest
  // "insert one subtree instance" — target = the document root pattern).
  Result<PathPattern> doc_target = ParsePathPattern("/site");
  if (!doc_target.ok()) return 1;

  std::printf("%-46s %-8s %14s %14s\n", "index pattern", "type",
              "est/insert", "actual/insert");
  // Estimated entries touched per inserted /site subtree.
  double target_count = synopsis->EstimateCount(*doc_target);
  for (const CatalogEntry* entry : catalog.AllIndexes()) {
    double overlap = synopsis->EstimateSubtreeOverlap(*doc_target,
                                                      entry->def.pattern);
    double est_per_insert =
        target_count > 0 ? overlap / target_count : overlap;
    // Note: DOUBLE indexes reject non-numeric values, which the overlap
    // estimate (node counts) does not know about; compare to VARCHAR
    // semantics where they coincide.
    std::printf("%-46s %-8s %14.1f %14s\n",
                entry->def.pattern.ToString().c_str(),
                ValueTypeName(entry->def.type), est_per_insert, "...");
  }

  // Now do it: insert 5 documents, measure per-index growth.
  std::printf("\nperforming 5 real document inserts + maintenance...\n");
  std::map<std::string, size_t> before;
  for (const CatalogEntry* entry : catalog.AllIndexes()) {
    before[entry->def.name] = entry->physical->num_entries();
  }
  Random rng(123);
  Collection* coll = db.GetCollection("xmark");
  size_t total_inserted = 0;
  for (int i = 0; i < 5; ++i) {
    DocId doc =
        coll->Add(GenerateXMarkDocument(db.mutable_names(), params, &rng));
    Result<MaintenanceStats> stats =
        ApplyDocumentInsert(db, "xmark", doc, &catalog);
    if (!stats.ok()) {
      std::cerr << stats.status().ToString() << "\n";
      return 1;
    }
    total_inserted += stats->entries_inserted;
  }
  std::printf("%-46s %-8s %14s %14s\n", "index pattern", "type",
              "est/insert", "actual/insert");
  for (const CatalogEntry* entry : catalog.AllIndexes()) {
    double overlap = synopsis->EstimateSubtreeOverlap(*doc_target,
                                                      entry->def.pattern);
    double est_per_insert =
        target_count > 0 ? overlap / target_count : overlap;
    double actual_per_insert =
        static_cast<double>(entry->physical->num_entries() -
                            before[entry->def.name]) /
        5.0;
    std::printf("%-46s %-8s %14.1f %14.1f\n",
                entry->def.pattern.ToString().c_str(),
                ValueTypeName(entry->def.type), est_per_insert,
                actual_per_insert);
  }
  std::printf("\ntotal entries inserted by maintenance: %zu\n",
              total_inserted);

  // And deletion: purge the 5 new documents again.
  size_t total_removed = 0;
  for (DocId doc = 10; doc < 15; ++doc) {
    Result<MaintenanceStats> stats =
        ApplyDocumentDelete(db, "xmark", doc, &catalog);
    if (!stats.ok()) return 1;
    total_removed += stats->entries_removed;
  }
  std::printf("total entries removed by delete maintenance: %zu\n",
              total_removed);
  std::printf("insert/delete symmetry: %s\n",
              total_inserted == total_removed ? "exact" : "MISMATCH");
  std::cout << "\nExpected shape: estimated entries/insert match actual for "
               "VARCHAR indexes\nexactly and overestimate DOUBLE indexes "
               "only by their non-numeric share.\n";
  return 0;
}
