// Sizing: virtual-index size estimation accuracy. The advisor packs a
// knapsack using *estimated* sizes; this harness builds every candidate
// physically and compares estimated vs actual size and entry counts.

#include <cstdio>
#include <iostream>

#include "advisor/enumeration.h"
#include "advisor/generalize.h"
#include "common/string_util.h"
#include "index/index_builder.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"

using namespace xia;

int main() {
  std::cout << "== Virtual-index size estimation vs actual builds ==\n\n";

  Database db;
  XMarkParams params;
  if (!PopulateXMark(&db, "xmark", 10, params, 42).ok()) return 1;
  Workload workload = MakeXMarkWorkload("xmark");
  ContainmentCache cache;

  Result<EnumerationResult> enumerated =
      EnumerateBasicCandidates(db, workload, &cache);
  if (!enumerated.ok()) {
    std::cerr << enumerated.status().ToString() << "\n";
    return 1;
  }
  std::vector<CandidateIndex> candidates = GeneralizeCandidates(
      enumerated->candidates, db, GeneralizeOptions());

  StorageConstants constants;
  std::printf("%-44s %-8s %9s %9s %10s %10s %7s\n", "pattern", "type",
              "est-rows", "act-rows", "est-size", "act-size", "ratio");
  double worst_ratio = 1.0;
  for (const CandidateIndex& cand : candidates) {
    IndexDefinition def = cand.def;
    def.name = "probe";
    Result<PathIndex> built = BuildIndex(db, def);
    if (!built.ok()) continue;
    double actual_size = built->ByteSize(constants);
    double ratio = actual_size > 0 ? cand.stats.size_bytes / actual_size
                                   : 1.0;
    worst_ratio = std::max(worst_ratio,
                           std::max(ratio, ratio > 0 ? 1.0 / ratio : 1.0));
    std::printf("%-44s %-8s %9.0f %9zu %10s %10s %6.2fx\n",
                def.pattern.ToString().c_str(), ValueTypeName(def.type),
                cand.stats.entries, built->num_entries(),
                FormatBytes(cand.stats.size_bytes).c_str(),
                FormatBytes(actual_size).c_str(), ratio);
  }
  std::printf("\nworst estimate/actual ratio: %.2fx over %zu candidates\n",
              worst_ratio, candidates.size());
  std::cout << "Expected shape: entry counts match exactly (the synopsis "
               "is lossless for\nlinear patterns); byte sizes agree within "
               "tens of percent.\n";
  return 0;
}
