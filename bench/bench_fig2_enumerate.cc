// Figure 2: basic candidate recommendation. For every workload query
// (XMark and TPoX, XQuery and SQL/XML), invoke the optimizer in the
// Enumerate Indexes mode and print the basic candidate index patterns —
// the rows the demo's visual client shows.

#include <iostream>

#include "optimizer/explain.h"
#include "workload/tpox_queries.h"
#include "workload/xmark_queries.h"
#include "xmldata/tpox_gen.h"
#include "xmldata/xmark_gen.h"

using namespace xia;

namespace {

int RunWorkload(const Database& db, const Workload& workload,
                const char* label) {
  ContainmentCache cache;
  std::cout << "---- " << label << " ----\n";
  size_t total = 0;
  for (const Query& query : workload.queries()) {
    Result<EnumerateIndexesResult> result =
        EnumerateIndexesMode(db, query, &cache);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "[" << query.id << " "
              << QueryLanguageName(query.language) << "] " << query.text
              << "\n";
    for (const CandidatePattern& c : result->candidates) {
      std::cout << "    candidate: " << c.ToString() << "\n";
      ++total;
    }
  }
  std::cout << "(" << workload.size() << " queries, " << total
            << " candidate patterns)\n\n";
  return 0;
}

}  // namespace

int main() {
  std::cout << "== Figure 2: Enumerate Indexes mode — basic candidates ==\n\n";

  Database xmark_db;
  XMarkParams xmark_params;
  if (!PopulateXMark(&xmark_db, "xmark", 10, xmark_params, 42).ok()) {
    return 1;
  }
  if (RunWorkload(xmark_db, MakeXMarkWorkload("xmark"), "XMark workload")) {
    return 1;
  }

  Database tpox_db;
  TpoxParams tpox_params;
  if (!PopulateTpox(&tpox_db, 40, 80, 20, tpox_params, 11).ok()) return 1;
  return RunWorkload(tpox_db, MakeTpoxWorkload(), "TPoX workload");
}
