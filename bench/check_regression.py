#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares the google-benchmark JSON produced by the perf benches
(bench_fig3_evaluate, bench_fig4_search, bench_maintenance, and the
BM_OpenFromDisk* rows of bench_micro) against a committed baseline and
fails when a tracked metric regresses beyond tolerance.

Two metric classes, chosen for machine-portability:

  counter metrics — deterministic optimizer-work counters reported by the
    benches themselves. These do not depend on wall-clock or core count:
      - BM_Search* rows (fig4 builds a fresh evaluator per iteration, so
        its JSON counters are per-iteration values): evaluations,
        cost_hits, cost_misses, cost_bypasses, chosen.
      - BM_Evaluate* rows (fig3 shares a warm cache across iterations, so
        only its iteration-independent counter qualifies): cost_misses.
      - BM_Maintenance* rows (seeded DML round trips at Iterations(1)):
        entries_inserted, entries_removed, est_entries, docs — pins both
        insert/delete maintenance symmetry and the agreement between the
        advisor's estimated entries-touched and the measured count.
    Checked two-sided (default ±25%): more work is a regression, and a
    large silent drop usually means the benchmark stopped measuring what
    it used to — refresh the baseline if the change is intentional.

  speedup metrics — within-run wall-clock ratios, so the machine cancels
    out: real_time(cache:0) / real_time(cache:1) for every benchmark that
    sweeps the cost-cache toggle. Checked one-sided with a wider
    tolerance (default -50%): only a collapsed speedup fails. A broken
    cache shows up as ~1x against a committed ~3-5x, far outside any
    runner noise.

  callcut metrics — what-if request ratios between paired exact and
    decomposed advising rows: whatif_requests(decompose:0) /
    whatif_requests(decompose:1) for each BM_AdviseTemplates template
    count. Both sides are deterministic counters, so the ratio is
    machine-independent; checked one-sided against the baseline like a
    speedup. The 10k-template row additionally carries a HARD floor of
    10x (CALLCUT_FLOORS) that no baseline refresh can lower — it is the
    PR acceptance bar for atomic-benefit decomposition, and a silent
    revert to exact scoring (ratio ~1x) or a pricing blow-up fails CI
    here even if someone refreshes the baseline over it.

Usage:
  check_regression.py <baseline.json> <bench1.json> [<bench2.json> ...]
  check_regression.py --refresh <baseline.json> <bench1.json> [...]

Refresh in one line (from a build directory with the benches built):

  build/bench/bench_fig3_evaluate --benchmark_format=json > /tmp/f3.json &&
  build/bench/bench_fig4_search  --benchmark_format=json > /tmp/f4.json &&
  python3 bench/check_regression.py --refresh \
      bench/baselines/BENCH_baseline.json /tmp/f3.json /tmp/f4.json

Exit status: 0 clean, 1 regression (or missing metric), 2 usage error.
"""

import json
import sys

COUNTER_TOLERANCE = 0.25
RATIO_TOLERANCE = 0.50

# Counters that are per-iteration (hence run-length independent) for each
# benchmark family. See the module docstring for why fig3 tracks fewer.
FULL_COUNTERS = ("evaluations", "cost_hits", "cost_misses", "cost_bypasses",
                 "chosen")
WARM_CACHE_COUNTERS = ("cost_misses",)
# Advising rows track total what-if traffic (the hits/misses split is
# thread-timing dependent at threads:4, the sum is not) plus the
# benefit-table accounting: benefit_priced pinned at 0 on exact rows and
# >0 on decomposed rows means a silent mode flip fails two-sided here.
ADVISE_TEMPLATE_COUNTERS = ("advised_templates", "whatif_requests",
                            "optimizer_runs", "benefit_priced",
                            "benefit_fallbacks", "chosen")
ADVISE_LOG_COUNTERS = ("advised_queries", "cost_requests", "benefit_priced",
                       "chosen")
# Recovery-on-open rows (bench_micro): deterministic page/record counts.
# `pages` drifting means the checkpoint serialization grew or shrank;
# `wal_records` is pinned at 0 (a Close()d database must reopen with an
# empty WAL); `pool_misses`==pages on cold opens and `pool_hits`==pages
# on warm opens is the BufferPool accounting contract.
OPEN_FROM_DISK_COUNTERS = ("pages", "wal_records", "pool_misses",
                           "pool_hits")
# Index-maintenance rows (bench_maintenance): seeded whole-document DML
# round trips, so every counter is exactly reproducible. entries_inserted
# and entries_removed drifting apart means insert/delete maintenance lost
# symmetry; est_entries drifting from entries_inserted means the
# synopsis-based per-update estimate the advisor charges decoupled from
# what maintenance actually touches.
MAINTENANCE_COUNTERS = ("entries_inserted", "entries_removed",
                        "est_entries", "docs")

# Absolute floors for callcut ratios (see docstring) — enforced against
# the current run directly, not the baseline. Keys name the paired row
# with the decompose arg stripped.
CALLCUT_FLOORS = {
    "callcut:BM_AdviseTemplates/templates:10000/iterations:1/real_time": 10.0,
}


def counter_names(bench_name):
    if bench_name.startswith("BM_Search"):
        return FULL_COUNTERS
    if bench_name.startswith("BM_Evaluate"):
        return WARM_CACHE_COUNTERS
    if bench_name.startswith("BM_AdviseTemplates"):
        return ADVISE_TEMPLATE_COUNTERS
    if bench_name.startswith("BM_AdviseFromLog"):
        return ADVISE_LOG_COUNTERS
    if bench_name.startswith("BM_OpenFromDisk"):
        return OPEN_FROM_DISK_COUNTERS
    if bench_name.startswith("BM_Maintenance"):
        return MAINTENANCE_COUNTERS
    return ()


def extract_metrics(bench_files):
    """Returns {metric_key: value} from google-benchmark JSON files."""
    metrics = {}
    rows = {}
    for path in bench_files:
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            name = bench["name"]
            rows[name] = bench
            for counter in counter_names(name):
                if counter in bench:
                    metrics[f"counter:{name}:{counter}"] = float(bench[counter])
    # Cache-toggle speedups: pair cache:0 rows with their cache:1 sibling.
    for name, bench in rows.items():
        if "cache:0" not in name:
            continue
        sibling = rows.get(name.replace("cache:0", "cache:1"))
        if sibling is None or float(sibling["real_time"]) <= 0:
            continue
        key = f"speedup:{name.replace('/cache:0', '')}"
        metrics[key] = float(bench["real_time"]) / float(
            sibling["real_time"])
    # Decompose call-cut ratios: exact row's what-if requests over its
    # decomposed sibling's.
    for name, bench in rows.items():
        if "decompose:0" not in name or "whatif_requests" not in bench:
            continue
        sibling = rows.get(name.replace("decompose:0", "decompose:1"))
        if sibling is None or float(sibling.get("whatif_requests", 0)) <= 0:
            continue
        key = f"callcut:{name.replace('/decompose:0', '')}"
        metrics[key] = float(bench["whatif_requests"]) / float(
            sibling["whatif_requests"])
    return metrics


def check(baseline, current):
    counter_tol = baseline.get("counter_tolerance", COUNTER_TOLERANCE)
    ratio_tol = baseline.get("ratio_tolerance", RATIO_TOLERANCE)
    failures = []
    for key, base in sorted(baseline["metrics"].items()):
        cur = current.get(key)
        if cur is None:
            failures.append(f"{key}: missing from current run "
                            f"(baseline {base:g})")
            continue
        if key.startswith("counter:"):
            if base == 0:
                if cur != 0:
                    failures.append(f"{key}: baseline 0, now {cur:g}")
                continue
            change = (cur - base) / base
            if abs(change) > counter_tol:
                failures.append(f"{key}: {base:g} -> {cur:g} "
                                f"({change:+.1%}, tolerance ±{counter_tol:.0%})")
        else:  # speedup/callcut: one-sided — only a collapse fails.
            if cur < base * (1.0 - ratio_tol):
                failures.append(f"{key}: {base:.2f}x -> {cur:.2f}x "
                                f"(floor {base * (1.0 - ratio_tol):.2f}x)")
    # Hard acceptance floors, independent of whatever the baseline says.
    for key, floor in sorted(CALLCUT_FLOORS.items()):
        cur = current.get(key)
        if cur is None:
            failures.append(f"{key}: missing from current run "
                            f"(hard floor {floor:g}x)")
        elif cur < floor:
            failures.append(f"{key}: {cur:.2f}x below hard floor {floor:g}x "
                            f"(decomposed advising must cut what-if calls)")
    for key in sorted(set(current) - set(baseline["metrics"])):
        print(f"note: new metric not in baseline (refresh to track): {key}")
    return failures


def main(argv):
    refresh = "--refresh" in argv
    args = [a for a in argv if a != "--refresh"]
    if len(args) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, bench_files = args[0], args[1:]
    current = extract_metrics(bench_files)
    if not current:
        print("error: no tracked metrics found in input files",
              file=sys.stderr)
        return 2

    if refresh:
        baseline = {
            "counter_tolerance": COUNTER_TOLERANCE,
            "ratio_tolerance": RATIO_TOLERANCE,
            "metrics": current,
        }
        with open(baseline_path, "w") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline refreshed: {len(current)} metrics -> "
              f"{baseline_path}")
        return 0

    with open(baseline_path) as f:
        baseline = json.load(f)
    failures = check(baseline, current)
    tracked = len(baseline["metrics"])
    if failures:
        print(f"REGRESSION: {len(failures)}/{tracked} tracked metrics "
              f"out of tolerance")
        for failure in failures:
            print(f"  {failure}")
        print("If intentional, refresh the baseline (see --help) and "
              "commit it with the change that moved the numbers.")
        return 1
    print(f"benchmark regression gate: {tracked} tracked metrics within "
          f"tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
