// chaos_harness — deterministic fault-injection driver for xia_server.
//
// Runs seeded chaos rounds against an in-process server under
// retrying-client load: bounded failpoint bursts (server.accept /
// server.read / server.write), torn-frame stall clients, and a
// kill-then-reopen storage cycle per round (drop the engine without
// Close, reopen, compare state fingerprints). After each round the
// faults are disarmed and the harness checks its invariants:
//
//   I1  every logical client call converged to a real server reply
//       (zero give-ups — bursts are bounded, retries must absorb them);
//   I2  the obs ledger reconciles (client.retries >= failpoint trips);
//   I3  no worker stays pinned (a post-chaos probe answers within the
//       per-attempt budget, stalled clients are reaped on schedule);
//   I4  post-crash recovery reproduces the pre-kill fingerprint.
//
// The whole schedule is a pure function of --seed. Exit code 0 means
// every invariant held in every round; any violation prints and exits 1.
//
// Usage:
//   chaos_harness [--seed=N] [--rounds=N] [--clients=N] [--ops=N]
//                 [--data-dir=PATH] [--stats-json=PATH]
//
// Defaults are CI-smoke sized (~2s). The nightly configuration runs
// hundreds of ops across many rounds; the invariants do not change.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/retrying_client.h"
#include "server/server.h"
#include "server/session.h"
#include "storage/storage_engine.h"
#include "xmldata/xmark_gen.h"

using namespace xia;

namespace {

struct HarnessConfig {
  uint64_t seed = 42;
  int rounds = 2;
  int clients = 3;
  int ops = 12;
  std::string data_dir;  // Empty: a scratch dir under /tmp, removed.
  std::string stats_json;
};

int g_violations = 0;

void Check(bool ok, const std::string& what) {
  if (ok) return;
  ++g_violations;
  std::cerr << "INVARIANT VIOLATED: " << what << "\n";
}

RetryPolicy ChaosPolicy(uint64_t seed) {
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff_ms = 2;
  policy.max_backoff_ms = 30;
  policy.jitter = 0.2;
  policy.jitter_seed = seed;
  policy.attempt_budget_ms = 2000;
  return policy;
}

/// One seeded round of connection-level chaos (I1-I3).
void ConnectionChaosRound(const HarnessConfig& config, uint64_t seed) {
  fp::DisarmAll();
  server::SharedState shared;
  Status populated =
      PopulateXMark(&shared.db, "xmark", 2, XMarkParams(), 42);
  Check(populated.ok(), "xmark population: " + populated.ToString());

  server::ServerOptions options;
  options.tcp_port = 0;
  options.workers = 4;
  options.max_connections = config.clients + 5;
  options.io_timeout_ms = 150;
  server::Server srv(&shared, options);
  Status started = srv.Start();
  Check(started.ok(), "server start: " + started.ToString());
  if (!started.ok()) return;

  obs::Snapshot before = obs::Registry().TakeSnapshot();

  const std::vector<std::string> kVerbs = {
      "ping", "health", "ready", "stats", "show catalog", "show workload"};
  std::vector<uint64_t> giveups(static_cast<size_t>(config.clients), 0);
  std::vector<int> failed(static_cast<size_t>(config.clients), 0);
  std::atomic<bool> chaos_done{false};
  std::vector<std::thread> load;
  load.reserve(static_cast<size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    load.emplace_back([&, c] {
      std::mt19937_64 rng(seed * 31 + static_cast<uint64_t>(c));
      server::RetryingClient client(srv.port(), ChaosPolicy(seed + c));
      client.set_prologue({"workload xmark"});
      for (int op = 0; op < config.ops; ++op) {
        Result<std::string> reply =
            client.Call(kVerbs[rng() % kVerbs.size()]);
        if (!reply.ok()) ++failed[static_cast<size_t>(c)];
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1 + static_cast<int>(rng() % 4)));
      }
      // Stay connected (light pings) until all faults are disarmed, so
      // any trip that lands on this connection — including one that
      // would otherwise hit our closing EOF — is paid for by a retry
      // we can count. Without this the I2 ledger below races with
      // client shutdown.
      while (!chaos_done.load(std::memory_order_acquire)) {
        if (!client.Call("ping").ok()) ++failed[static_cast<size_t>(c)];
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
      if (!client.Call("ping").ok()) ++failed[static_cast<size_t>(c)];
      giveups[static_cast<size_t>(c)] = client.giveups();
      client.Close();
    });
  }

  // Bounded fault bursts.
  std::thread chaos([&] {
    std::mt19937_64 rng(seed);
    const char* kTargets[] = {"server.read", "server.write",
                              "server.accept"};
    for (int burst = 0; burst < 6; ++burst) {
      fp::FailSpec spec;
      spec.code = StatusCode::kInternal;
      spec.max_trips = 1 + static_cast<int>(rng() % 2);
      fp::Arm(kTargets[rng() % 3], spec);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(5 + static_cast<int>(rng() % 15)));
    }
    fp::DisarmAll();
    chaos_done.store(true, std::memory_order_release);
  });

  for (std::thread& t : load) t.join();
  chaos.join();
  fp::DisarmAll();

  // A torn-frame staller: half a frame, then silence. The server must
  // reap it on the io-timeout schedule instead of pinning a worker.
  // It runs after DisarmAll so an armed server.read fault cannot be
  // consumed by a connection that never pays a retry (which would
  // break the I2 ledger below).
  {
    Result<server::BlockingClient> raw =
        server::BlockingClient::ConnectTcp(srv.port());
    Check(raw.ok(), "staller connect: " + raw.status().ToString());
    if (raw.ok()) {
      std::string torn = server::EncodeFrame(std::string(64, 'x'));
      (void)raw->SendRaw(torn.substr(0, 6));
      // The reap shows up as EOF on our side, within ~2 timeout ticks.
      (void)raw->SetIoTimeoutMillis(4 * options.io_timeout_ms);
      Result<std::string> reply = raw->Receive();
      Check(!reply.ok(), "stalled client must be dropped, not answered");
    }
  }

  // I3: post-chaos the server answers promptly.
  server::RetryingClient probe(srv.port(), ChaosPolicy(seed));
  Result<std::string> ping = probe.Call("ping");
  Check(ping.ok(), "post-chaos probe: " +
                       (ping.ok() ? "" : ping.status().ToString()));
  probe.Close();

  uint64_t total_giveups = 0;
  int total_failed = 0;
  for (int c = 0; c < config.clients; ++c) {
    total_giveups += giveups[static_cast<size_t>(c)];
    total_failed += failed[static_cast<size_t>(c)];
  }
  Check(total_giveups == 0, "I1: give-ups under bounded faults (" +
                                std::to_string(total_giveups) + ")");
  Check(total_failed == 0, "I1: unconverged calls (" +
                               std::to_string(total_failed) + ")");

  obs::Snapshot after = obs::Registry().TakeSnapshot();
  uint64_t trips = (after.counter("failpoint.server.read.trips") -
                    before.counter("failpoint.server.read.trips")) +
                   (after.counter("failpoint.server.write.trips") -
                    before.counter("failpoint.server.write.trips")) +
                   (after.counter("failpoint.server.accept.trips") -
                    before.counter("failpoint.server.accept.trips"));
  uint64_t retries = after.counter("client.retries") -
                     before.counter("client.retries");
  Check(retries >= trips,
        "I2: ledger (" + std::to_string(retries) + " retries < " +
            std::to_string(trips) + " trips)");
  Check(after.counter("server.timeouts") >
            before.counter("server.timeouts"),
        "I3: the stalled client must be counted in server.timeouts");

  std::cout << "  round seed=" << seed << ": " << trips << " trips, "
            << retries << " retries, " << total_giveups << " giveups, "
            << (after.counter("server.timeouts") -
                before.counter("server.timeouts"))
            << " stall timeouts\n";

  srv.RequestStop();
  srv.Wait();
}

/// One kill-then-reopen storage cycle (I4), with a WAL fault injected
/// and healed along the way.
void CrashRecoveryRound(const std::string& db_dir, uint64_t seed) {
  namespace fs = std::filesystem;
  fp::DisarmAll();
  storage::StorageOptions no_sync;
  no_sync.sync = false;

  auto open_into = [&](server::SharedState* shared) -> bool {
    Result<std::unique_ptr<storage::StorageEngine>> opened =
        storage::StorageEngine::Open(
            db_dir, &shared->db, &shared->catalog, &shared->buffer_pool,
            shared->default_options.cost_model.storage, no_sync);
    Check(opened.ok(), "storage open: " + opened.status().ToString());
    if (!opened.ok()) return false;
    shared->engine = std::move(*opened);
    return true;
  };

  fs::path xml = fs::path(db_dir).parent_path() / "chaos_doc.xml";
  {
    std::ofstream file(xml);
    file << "<site><item><price>" << (seed % 97)
         << "</price></item></site>";
  }

  std::string fingerprint;
  {
    server::SharedState shared;
    if (!open_into(&shared)) return;
    server::ServerOptions options;
    options.tcp_port = 0;
    server::Server srv(&shared, options);
    if (!srv.Start().ok()) return;
    server::RetryingClient client(srv.port(), ChaosPolicy(seed));

    {
      fp::FailSpec spec;
      spec.max_trips = 1;
      fp::ScopedFailpoint armed("storage.wal.append", spec);
      Result<std::string> refused =
          client.Call("load docs " + xml.string());
      Check(refused.ok() &&
                refused->find("loaded 1 document") == std::string::npos,
            "injected wal.append fault must refuse the load");
    }
    Result<std::string> healed = client.Call("db checkpoint");
    Check(healed.ok() &&
              healed->find("checkpointed") != std::string::npos,
          "checkpoint must heal the poisoned WAL");
    Result<std::string> loaded = client.Call("load docs " + xml.string());
    Check(loaded.ok() &&
              loaded->find("loaded 1 document") != std::string::npos,
          "post-heal load must succeed");
    Result<std::string> analyzed = client.Call("analyze docs");
    Check(analyzed.ok() &&
              analyzed->find("statistics rebuilt") != std::string::npos,
          "post-heal analyze must succeed");

    client.Close();
    srv.RequestStop();
    srv.Wait();
    fingerprint = storage::StorageEngine::StateFingerprint(shared.db,
                                                           shared.catalog);
    // Kill: drop the engine without Close().
  }
  {
    server::SharedState shared;
    if (!open_into(&shared)) return;
    std::string recovered = storage::StorageEngine::StateFingerprint(
        shared.db, shared.catalog);
    Check(recovered == fingerprint,
          "I4: recovered fingerprint mismatch after kill");
    std::cout << "  recovery seed=" << seed << ": fingerprint "
              << (recovered == fingerprint ? "match" : "MISMATCH") << "\n";
  }
  fs::remove(xml);
}

}  // namespace

int main(int argc, char** argv) {
  HarnessConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const std::string& flag) {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::strtoull(value("--seed=").c_str(), nullptr, 10);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      config.rounds = std::atoi(value("--rounds=").c_str());
    } else if (arg.rfind("--clients=", 0) == 0) {
      config.clients = std::atoi(value("--clients=").c_str());
    } else if (arg.rfind("--ops=", 0) == 0) {
      config.ops = std::atoi(value("--ops=").c_str());
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      config.data_dir = value("--data-dir=");
    } else if (arg.rfind("--stats-json=", 0) == 0) {
      config.stats_json = value("--stats-json=");
    } else {
      std::cerr << "unknown flag " << arg << " (see the file header)\n";
      return 2;
    }
  }

  namespace fs = std::filesystem;
  fs::path scratch;
  if (config.data_dir.empty()) {
    scratch = fs::temp_directory_path() / "xia_chaos_harness";
    fs::remove_all(scratch);
    fs::create_directories(scratch);
    config.data_dir = (scratch / "db").string();
  }

  std::cout << "chaos_harness: seed=" << config.seed
            << " rounds=" << config.rounds
            << " clients=" << config.clients << " ops=" << config.ops
            << "\n";
  for (int round = 0; round < config.rounds; ++round) {
    uint64_t seed = config.seed + static_cast<uint64_t>(round) * 1000;
    ConnectionChaosRound(config, seed);
    // A fresh db dir per recovery cycle keeps rounds independent (and
    // the schedule a pure function of the seed).
    std::string db_dir =
        config.data_dir + "_r" + std::to_string(round);
    fs::remove_all(db_dir);
    CrashRecoveryRound(db_dir, seed);
    fs::remove_all(db_dir);
  }
  fp::DisarmAll();

  if (!config.stats_json.empty()) {
    if (obs::Registry().WriteJsonFile(config.stats_json)) {
      std::cout << "obs snapshot written to " << config.stats_json << "\n";
    } else {
      std::cerr << "failed to write " << config.stats_json << "\n";
      return 2;
    }
  }
  if (!scratch.empty()) fs::remove_all(scratch);

  if (g_violations > 0) {
    std::cerr << "chaos_harness: " << g_violations
              << " invariant violation(s)\n";
    return 1;
  }
  std::cout << "chaos_harness: all invariants held\n";
  return 0;
}
