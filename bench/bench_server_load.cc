// Multi-connection load generator for xia_server, as a google-benchmark
// harness. Each benchmark thread is one client connection driving the
// framed wire protocol; together they report throughput
// (items_per_second), p50/p99 request latency, and BUSY/error counts —
// the numbers CI's server-smoke job records and the regression gate can
// track.
//
// Two targets:
//   - default: an in-process Server on an ephemeral loopback port,
//     preloaded with small XMark + TPoX collections (self-contained, the
//     mode the regression baseline uses);
//   - --socket=PATH / --port=N: an EXTERNAL xia_server (CI's smoke job
//     starts one on a unix socket and points this harness at it).
//
// Benchmarks:
//   BM_Ping/threads:N          protocol + dispatch floor (no query work)
//   BM_RunXMarkMix/threads:N   the XMark query mix via `run`
//   BM_RunTpoxMix/threads:N    the TPoX query mix via `run`
//   BM_RunMixedWorkload/...    both mixes interleaved per connection
//   BM_AdviseOverload/...      budgeted advises racing the admission
//                              bound: OK vs fast-BUSY split
//
// Flags (stripped before benchmark::Initialize, which rejects unknown
// arguments): --socket=PATH, --port=N, --stats-json=PATH (final obs
// registry snapshot, as in bench_main.h).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/session.h"
#include "workload/tpox_queries.h"
#include "workload/xmark_queries.h"
#include "xmldata/tpox_gen.h"
#include "xmldata/xmark_gen.h"

namespace xia {
namespace server {
namespace {

// External target, set by --socket= / --port=; empty + 0 means
// in-process.
std::string g_external_socket;   // NOLINT(runtime/string)
int g_external_port = 0;

/// The in-process target: one SharedState + Server, built on first use
/// and leaked (benchmark registration outlives scoped statics). Sized so
/// the load generator itself is the bottleneck: plenty of workers and
/// connection slots, the default advise admission bound.
struct InProcessServer {
  SharedState shared;
  std::unique_ptr<Server> server;

  InProcessServer() {
    XIA_CHECK(
        PopulateXMark(&shared.db, "xmark", 4, XMarkParams(), 42).ok());
    XIA_CHECK(PopulateTpox(&shared.db, 20, 40, 10, TpoxParams(), 11).ok());
    ServerOptions options;
    options.tcp_port = 0;  // Ephemeral.
    options.workers = 16;
    options.max_connections = 64;
    options.max_inflight_advises = 2;
    server = std::make_unique<Server>(&shared, options);
    XIA_CHECK(server->Start().ok());
  }
};

InProcessServer* SharedInProcess() {
  static InProcessServer* instance = new InProcessServer();
  return instance;
}

BlockingClient ConnectTarget() {
  Result<BlockingClient> client =
      !g_external_socket.empty()
          ? BlockingClient::ConnectUnix(g_external_socket)
          : BlockingClient::ConnectTcp(g_external_port != 0
                                           ? g_external_port
                                           : SharedInProcess()->server->port());
  XIA_CHECK(client.ok());
  return std::move(*client);
}

/// Query texts of the built-in workloads (collection names match what
/// both the in-process fixture and CI's --preload produce).
std::vector<std::string> MixTexts(bool xmark, bool tpox) {
  std::vector<std::string> texts;
  if (xmark) {
    Workload workload = MakeXMarkWorkload("xmark");
    for (const Query& q : workload.queries()) texts.push_back(q.text);
  }
  if (tpox) {
    Workload workload = MakeTpoxWorkload();
    for (const Query& q : workload.queries()) texts.push_back(q.text);
  }
  return texts;
}

/// Per-thread latency recorder -> p50/p99 counters (averaged across the
/// connection threads) + throughput.
class LatencyTrack {
 public:
  void Record(double micros) { latencies_.push_back(micros); }

  void Report(benchmark::State& state) {
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    if (latencies_.empty()) return;
    std::sort(latencies_.begin(), latencies_.end());
    state.counters["p50_us"] =
        benchmark::Counter(Percentile(0.50), benchmark::Counter::kAvgThreads);
    state.counters["p99_us"] =
        benchmark::Counter(Percentile(0.99), benchmark::Counter::kAvgThreads);
  }

 private:
  double Percentile(double p) const {
    size_t idx = static_cast<size_t>(p * static_cast<double>(
                                             latencies_.size() - 1));
    return latencies_[idx];
  }

  std::vector<double> latencies_;
};

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void DriveMix(benchmark::State& state, const std::vector<std::string>& texts) {
  BlockingClient client = ConnectTarget();
  LatencyTrack track;
  int64_t errors = 0;
  size_t i = static_cast<size_t>(state.thread_index());  // Offset threads.
  for (auto _ : state) {
    const std::string& text = texts[i++ % texts.size()];
    auto start = std::chrono::steady_clock::now();
    Result<std::string> reply = client.Call("run " + text);
    track.Record(MicrosSince(start));
    if (!reply.ok() ||
        ClassifyResponse(*reply) != ResponseKind::kOk) {
      ++errors;
    }
  }
  track.Report(state);
  state.counters["errors"] = benchmark::Counter(
      static_cast<double>(errors));
}

void BM_Ping(benchmark::State& state) {
  BlockingClient client = ConnectTarget();
  LatencyTrack track;
  int64_t errors = 0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    Result<std::string> reply = client.Call("ping");
    track.Record(MicrosSince(start));
    if (!reply.ok()) ++errors;
  }
  track.Report(state);
  state.counters["errors"] =
      benchmark::Counter(static_cast<double>(errors));
}
BENCHMARK(BM_Ping)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_RunXMarkMix(benchmark::State& state) {
  static const std::vector<std::string>& texts =
      *new std::vector<std::string>(MixTexts(true, false));
  DriveMix(state, texts);
}
BENCHMARK(BM_RunXMarkMix)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_RunTpoxMix(benchmark::State& state) {
  static const std::vector<std::string>& texts =
      *new std::vector<std::string>(MixTexts(false, true));
  DriveMix(state, texts);
}
BENCHMARK(BM_RunTpoxMix)->Threads(1)->Threads(4)->UseRealTime();

void BM_RunMixedWorkload(benchmark::State& state) {
  static const std::vector<std::string>& texts =
      *new std::vector<std::string>(MixTexts(true, true));
  DriveMix(state, texts);
}
BENCHMARK(BM_RunMixedWorkload)->Threads(4)->Threads(8)->UseRealTime();

/// Budgeted advises racing the admission bound: with more connections
/// than max_inflight_advises, a slice of requests must get the fast BUSY
/// — never a queue-behind-the-advisor stall. The OK/BUSY split is
/// reported; BUSY latency should sit orders of magnitude under OK
/// latency (that is the whole point of admission control).
void BM_AdviseOverload(benchmark::State& state) {
  BlockingClient client = ConnectTarget();
  XIA_CHECK(client.Call("workload xmark").ok());
  LatencyTrack track;
  int64_t ok = 0;
  int64_t busy = 0;
  int64_t errors = 0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    Result<std::string> reply = client.Call("advise --budget-ms 20 48");
    track.Record(MicrosSince(start));
    if (!reply.ok()) {
      ++errors;
      continue;
    }
    switch (ClassifyResponse(*reply)) {
      case ResponseKind::kOk:
        ++ok;
        break;
      case ResponseKind::kBusy:
        ++busy;
        break;
      default:
        ++errors;
    }
  }
  track.Report(state);
  state.counters["ok"] = benchmark::Counter(static_cast<double>(ok));
  state.counters["busy"] = benchmark::Counter(static_cast<double>(busy));
  state.counters["errors"] = benchmark::Counter(static_cast<double>(errors));
}
BENCHMARK(BM_AdviseOverload)->Threads(4)->UseRealTime();

}  // namespace
}  // namespace server
}  // namespace xia

// Custom main: strip --socket= / --port= / --stats-json= before handing
// the rest to google-benchmark (which rejects unknown flags).
int main(int argc, char** argv) {
  std::string stats_json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr char kSocket[] = "--socket=";
    constexpr char kPort[] = "--port=";
    constexpr char kStatsJson[] = "--stats-json=";
    if (std::strncmp(argv[i], kSocket, sizeof(kSocket) - 1) == 0) {
      xia::server::g_external_socket = argv[i] + sizeof(kSocket) - 1;
      continue;
    }
    if (std::strncmp(argv[i], kPort, sizeof(kPort) - 1) == 0) {
      xia::server::g_external_port = std::atoi(argv[i] + sizeof(kPort) - 1);
      continue;
    }
    if (std::strncmp(argv[i], kStatsJson, sizeof(kStatsJson) - 1) == 0) {
      stats_json_path = argv[i] + sizeof(kStatsJson) - 1;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!stats_json_path.empty()) {
    if (!xia::obs::Registry().WriteJsonFile(stats_json_path)) {
      std::fprintf(stderr, "failed to write stats JSON to %s\n",
                   stats_json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "stats JSON written to %s\n",
                 stats_json_path.c_str());
  }
  return 0;
}
