// Optimality gap: on a workload small enough to enumerate every index
// configuration that fits the budget, compare each search strategy's
// recommendation against the true optimum. Quantifies how much the greedy
// approximation of the 0/1 knapsack (Section 2.3) actually gives up.

#include <cstdio>
#include <iostream>
#include <algorithm>
#include <memory>

#include "advisor/advisor.h"
#include "advisor/benefit.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "xmldata/xmark_gen.h"

using namespace xia;

namespace {

/// Small training workload so the candidate set stays enumerable.
Workload SmallWorkload() {
  Workload w;
  auto add = [&w](const std::string& text, double weight) {
    Status status = w.AddQueryText(text, weight);
    XIA_CHECK(status.ok());
  };
  add("for $i in doc(\"xmark\")/site/regions/namerica/item "
      "where $i/quantity > 5 return $i/name",
      3.0);
  add("for $i in doc(\"xmark\")/site/regions/africa/item "
      "where $i/quantity > 2 return $i/name",
      2.0);
  add("for $i in doc(\"xmark\")/site/regions/samerica/item "
      "where $i/price < 50 return $i/name",
      2.0);
  add("for $p in doc(\"xmark\")/site/people/person "
      "where $p/profile/@income >= 80000 return $p/name",
      1.0);
  return w;
}

}  // namespace

int main() {
  std::cout << "== Optimality gap vs exhaustive configuration search ==\n\n";

  Database db;
  XMarkParams params;
  if (!PopulateXMark(&db, "xmark", 8, params, 42).ok()) return 1;
  Workload workload = SmallWorkload();
  Catalog catalog;
  CostModel cost_model;

  // Build the advisor's own candidate set (basics + generalized).
  ContainmentCache cache;
  Result<EnumerationResult> enumerated =
      EnumerateBasicCandidates(db, workload, &cache);
  if (!enumerated.ok()) return 1;
  std::vector<CandidateIndex> all_candidates = GeneralizeCandidates(
      enumerated->candidates, db, GeneralizeOptions());

  // Keep the exhaustive sweep tractable: drop candidates with no
  // stand-alone benefit (with no updates in the workload, adding an index
  // never increases cost, so they cannot be part of an optimum), then cap
  // at 16 by solo benefit.
  Optimizer optimizer(&db, cost_model);
  std::vector<CandidateIndex> candidates;
  {
    ConfigurationEvaluator prune_eval(&optimizer, &workload, &catalog,
                                      &all_candidates, &cache,
                                      /*account_update_cost=*/true);
    Result<double> base = prune_eval.BaselineCost();
    if (!base.ok()) return 1;
    std::vector<std::pair<double, size_t>> ranked;
    for (size_t i = 0; i < all_candidates.size(); ++i) {
      Result<ConfigurationEvaluator::Evaluation> eval =
          prune_eval.Evaluate({static_cast<int>(i)});
      if (!eval.ok()) return 1;
      double benefit = *base - eval->TotalCost();
      if (benefit > 0) ranked.push_back({benefit, i});
    }
    std::sort(ranked.rbegin(), ranked.rend());
    if (ranked.size() > 16) ranked.resize(16);
    for (const auto& [benefit, i] : ranked) {
      candidates.push_back(all_candidates[i]);
    }
  }
  size_t n = candidates.size();
  std::cout << all_candidates.size() << " candidates, " << n
            << " with stand-alone benefit -> " << (1u << n)
            << " configurations enumerated per budget\n\n";

  ConfigurationEvaluator evaluator(&optimizer, &workload, &catalog,
                                   &candidates, &cache,
                                   /*account_update_cost=*/true);
  Result<double> baseline = evaluator.BaselineCost();
  if (!baseline.ok()) return 1;

  std::printf("%-10s %12s | %10s %10s %10s\n", "budget", "optimal",
              "greedy%", "heuristic%", "topdown%");
  for (double budget_kb : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    double budget = budget_kb * 1024;
    // Exhaustive sweep over all subsets that fit.
    double best_benefit = 0;
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<int> config;
      double size = 0;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          config.push_back(static_cast<int>(i));
          size += candidates[i].size_bytes();
        }
      }
      if (size > budget) continue;
      Result<ConfigurationEvaluator::Evaluation> eval =
          evaluator.Evaluate(config);
      if (!eval.ok()) return 1;
      best_benefit = std::max(best_benefit, *baseline - eval->TotalCost());
    }

    // Each strategy's achieved fraction of the optimum.
    double achieved[3] = {0, 0, 0};
    int slot = 0;
    for (SearchAlgorithm algo :
         {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyHeuristic,
          SearchAlgorithm::kTopDown}) {
      AdvisorOptions options;
      options.space_budget_bytes = budget;
      options.algorithm = algo;
      options.cost_model = cost_model;
      Advisor advisor(&db, &catalog, options);
      Result<Recommendation> rec = advisor.Recommend(workload);
      if (!rec.ok()) return 1;
      achieved[slot++] =
          best_benefit > 0 ? 100.0 * rec->benefit / best_benefit : 100.0;
    }
    std::printf("%-10s %12.0f | %9.1f%% %9.1f%% %9.1f%%\n",
                FormatBytes(budget).c_str(), best_benefit, achieved[0],
                achieved[1], achieved[2]);
  }
  std::cout << "\nExpected shape: greedy+heuristics tracks the optimum "
               "closely at every\nbudget; plain greedy dips where "
               "redundant picks crowd out useful ones;\ntop-down pays a "
               "bounded generality premium.\n";
  return 0;
}
