// Microbenchmarks (google-benchmark): the substrate operations the
// advisor leans on — path parsing, containment, synopsis matching, index
// probes, optimization, and DAG construction.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>

#include "advisor/dag.h"
#include "common/logging.h"
#include "advisor/enumeration.h"
#include "advisor/generalize.h"
#include "index/index_builder.h"
#include "optimizer/explain.h"
#include "query/parser.h"
#include "storage/storage_engine.h"
#include "wlm/capture.h"
#include "wlm/compress.h"
#include "wlm/fingerprint.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"
#include "xpath/containment.h"
#include "xpath/parser.h"

namespace xia {
namespace {

/// Shared database fixture, built once.
Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    XMarkParams params;
    XIA_CHECK(PopulateXMark(d, "xmark", 10, params, 42).ok());
    return d;
  }();
  return db;
}

void BM_ParsePathPattern(benchmark::State& state) {
  for (auto _ : state) {
    auto p = ParsePathPattern("/site/regions/*/item//mailbox/mail/@date");
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ParsePathPattern);

void BM_ParseXQuery(benchmark::State& state) {
  const std::string text =
      "for $i in doc(\"xmark\")/site/regions/africa/item[quantity > 3] "
      "where $i/price < 100 and $i/payment = \"Cash\" return $i/name";
  for (auto _ : state) {
    auto q = ParseQuery(text);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseXQuery);

void BM_ContainmentFastPath(benchmark::State& state) {
  PathPattern g = *ParsePathPattern("/site/regions/*/item/*");
  PathPattern s = *ParsePathPattern("/site/regions/africa/item/quantity");
  for (auto _ : state) {
    benchmark::DoNotOptimize(PatternContains(g, s));
  }
}
BENCHMARK(BM_ContainmentFastPath);

void BM_ContainmentAutomaton(benchmark::State& state) {
  PathPattern g = *ParsePathPattern("//regions//item/*");
  PathPattern s = *ParsePathPattern("/site/regions/africa/item//quantity");
  for (auto _ : state) {
    benchmark::DoNotOptimize(PatternContains(g, s));
  }
}
BENCHMARK(BM_ContainmentAutomaton);

void BM_ContainmentCached(benchmark::State& state) {
  ContainmentCache cache;
  PathPattern g = *ParsePathPattern("//regions//item/*");
  PathPattern s = *ParsePathPattern("/site/regions/africa/item//quantity");
  cache.Contains(g, s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Contains(g, s));
  }
}
BENCHMARK(BM_ContainmentCached);

void BM_SynopsisMatch(benchmark::State& state) {
  const PathSynopsis* synopsis = SharedDb()->synopsis("xmark");
  PathPattern p = *ParsePathPattern("/site/regions/*/item/quantity");
  for (auto _ : state) {
    benchmark::DoNotOptimize(synopsis->EstimateCount(p));
  }
}
BENCHMARK(BM_SynopsisMatch);

void BM_IndexBuild(benchmark::State& state) {
  IndexDefinition def;
  def.name = "bm";
  def.collection = "xmark";
  def.pattern = *ParsePathPattern("/site/regions/*/item/quantity");
  def.type = ValueType::kDouble;
  for (auto _ : state) {
    auto index = BuildIndex(*SharedDb(), def);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexBuild);

void BM_IndexProbe(benchmark::State& state) {
  IndexDefinition def;
  def.name = "bm";
  def.collection = "xmark";
  def.pattern = *ParsePathPattern("/site/regions/*/item/quantity");
  def.type = ValueType::kDouble;
  Result<PathIndex> index = BuildIndex(*SharedDb(), def);
  XIA_CHECK(index.ok());
  auto key = TypedValue::Make(ValueType::kDouble, "5");
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->LookupEq(*key));
  }
}
BENCHMARK(BM_IndexProbe);

void BM_OptimizeQuery(benchmark::State& state) {
  CostModel cost_model;
  Optimizer optimizer(SharedDb(), cost_model);
  ContainmentCache cache;
  Catalog catalog;
  IndexDefinition def;
  def.name = "bm";
  def.collection = "xmark";
  def.pattern = *ParsePathPattern("/site/regions/*/item/quantity");
  def.type = ValueType::kDouble;
  VirtualIndexStats stats = EstimateVirtualIndex(
      *SharedDb()->synopsis("xmark"), def, cost_model.storage);
  XIA_CHECK(catalog.AddVirtual(def, stats).ok());
  Query query = *ParseQuery(
      "for $i in doc(\"xmark\")/site/regions/africa/item "
      "where $i/quantity > 5 return $i/name");
  for (auto _ : state) {
    auto plan = optimizer.Optimize(query, catalog, &cache);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeQuery);

void BM_EnumerateIndexesMode(benchmark::State& state) {
  ContainmentCache cache;
  Query query = *ParseQuery(
      "for $i in doc(\"xmark\")/site/regions/africa/item "
      "where $i/quantity > 5 and $i/payment = \"Cash\" return $i/name");
  for (auto _ : state) {
    auto result = EnumerateIndexesMode(*SharedDb(), query, &cache);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EnumerateIndexesMode);

void BM_CaptureHookDisarmed(benchmark::State& state) {
  // The workload-capture hook as it sits on the executor hot path, with
  // no log installed: the entire cost must be the CaptureEnabled() check
  // — one relaxed atomic load (the XIA_SPAN / failpoint discipline).
  // Compare against BM_CaptureHookArmed for the armed delta.
  wlm::SetCaptureLog(nullptr);
  QueryPlan plan;
  plan.query_text = "for $i in doc(\"xmark\")/site/regions/africa/item "
                    "where $i/quantity > 5 return $i/name";
  plan.total_cost = 12.5;
  for (auto _ : state) {
    if (wlm::CaptureEnabled()) wlm::MaybeCapture(plan);
    benchmark::DoNotOptimize(&plan);
  }
}
BENCHMARK(BM_CaptureHookDisarmed);

void BM_CaptureHookArmed(benchmark::State& state) {
  // Armed capture: fingerprint + shard append per call (ring overwrites
  // once warm). This is the per-query price of `capture on`.
  Query query = *ParseQuery(
      "for $i in doc(\"xmark\")/site/regions/africa/item "
      "where $i/quantity > 5 return $i/name");
  QueryPlan plan;
  plan.query_text = query.text;
  plan.query = query.normalized;
  plan.total_cost = 12.5;
  wlm::QueryLog log(4096);
  wlm::SetCaptureLog(&log);
  for (auto _ : state) {
    if (wlm::CaptureEnabled()) wlm::MaybeCapture(plan);
    benchmark::DoNotOptimize(&plan);
  }
  wlm::SetCaptureLog(nullptr);
}
BENCHMARK(BM_CaptureHookArmed);

void BM_CompressLog(benchmark::State& state) {
  // Template compression over a 1024-record log of 4 templates.
  std::vector<wlm::CaptureRecord> records;
  for (int i = 0; i < 1024; ++i) {
    wlm::CaptureRecord r;
    r.seq = static_cast<uint64_t>(i);
    r.text = "for $i in doc(\"xmark\")/site/regions/africa/item "
             "where $i/quantity > " +
             std::to_string(i % 7) + " and $i/price < " +
             std::to_string(100 + i % 11) + " return $i/name";
    Result<Query> q = ParseQuery(r.text);
    XIA_CHECK(q.ok());
    r.fingerprint = wlm::TemplateFingerprint(*q);
    r.est_cost = 1.0 + (i % 4);
    records.push_back(std::move(r));
  }
  for (auto _ : state) {
    auto out = wlm::CompressLog(records);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CompressLog);

void BM_GeneralizeAndBuildDag(benchmark::State& state) {
  ContainmentCache enum_cache;
  Workload workload = MakeXMarkWorkload("xmark");
  Result<EnumerationResult> enumerated =
      EnumerateBasicCandidates(*SharedDb(), workload, &enum_cache);
  XIA_CHECK(enumerated.ok());
  for (auto _ : state) {
    std::vector<CandidateIndex> expanded = GeneralizeCandidates(
        enumerated->candidates, *SharedDb(), GeneralizeOptions());
    ContainmentCache cache;
    GeneralizationDag dag = GeneralizationDag::Build(expanded, &cache);
    benchmark::DoNotOptimize(dag);
  }
}
BENCHMARK(BM_GeneralizeAndBuildDag);

// ---------------------------------------------------------------------
// Persistent storage: cold vs. warm recovery-on-open (storage/
// storage_engine.h). A scratch database is checkpointed once — xmark
// docs plus one materialized path index — then every iteration opens it
// into a fresh Database/Catalog. "Cold" gives each iteration its own
// BufferPool, so every checkpoint page is a physical miss; "warm"
// shares one pool across iterations, so after the priming open every
// page is a hit. The counters are deterministic page/record counts the
// CI regression gate tracks (bench/check_regression.py).

const std::string& PersistedDbDir() {
  static const std::string* dir = [] {
    std::filesystem::path path =
        std::filesystem::temp_directory_path() / "xia_bench_open_from_disk";
    std::filesystem::remove_all(path);
    Database db;
    Catalog catalog;
    XIA_CHECK(PopulateXMark(&db, "xmark", 6, XMarkParams(), 42).ok());
    storage::StorageOptions options;
    options.sync = false;  // tmpfs scratch: measure the read path.
    auto engine = storage::StorageEngine::Open(
        path.string(), &db, &catalog, nullptr, CostModel().storage, options);
    XIA_CHECK(engine.ok());
    XIA_CHECK((*engine)
                  ->CreateIndex(
                      "CREATE INDEX q_idx ON xmark(doc) GENERATE KEY USING "
                      "XMLPATTERN '/site/regions/*/item/quantity' "
                      "AS SQL DOUBLE")
                  .ok());
    XIA_CHECK((*engine)->Close().ok());
    return new std::string(path.string());
  }();
  return *dir;
}

void BM_OpenFromDiskCold(benchmark::State& state) {
  const std::string& dir = PersistedDbDir();
  storage::StorageOptions options;
  options.sync = false;
  uint64_t pages = 0;
  uint64_t wal_records = 0;
  uint64_t pool_misses = 0;
  for (auto _ : state) {
    Database db;
    Catalog catalog;
    BufferPool pool(1 << 16);
    auto engine = storage::StorageEngine::Open(
        dir, &db, &catalog, &pool, CostModel().storage, options);
    XIA_CHECK(engine.ok());
    pages = (*engine)->recovery().pages_read;
    wal_records = (*engine)->recovery().wal_records_replayed;
    pool_misses = pool.misses();
    benchmark::DoNotOptimize(db);
  }
  state.counters["pages"] = static_cast<double>(pages);
  state.counters["wal_records"] = static_cast<double>(wal_records);
  state.counters["pool_misses"] = static_cast<double>(pool_misses);
}
BENCHMARK(BM_OpenFromDiskCold);

void BM_OpenFromDiskWarm(benchmark::State& state) {
  const std::string& dir = PersistedDbDir();
  storage::StorageOptions options;
  options.sync = false;
  BufferPool pool(1 << 16);
  {
    // Priming open fills the shared pool.
    Database db;
    Catalog catalog;
    XIA_CHECK(storage::StorageEngine::Open(dir, &db, &catalog, &pool,
                                           CostModel().storage, options)
                  .ok());
  }
  uint64_t pages = 0;
  uint64_t pool_hits = 0;
  for (auto _ : state) {
    Database db;
    Catalog catalog;
    uint64_t hits_before = pool.hits();
    auto engine = storage::StorageEngine::Open(
        dir, &db, &catalog, &pool, CostModel().storage, options);
    XIA_CHECK(engine.ok());
    pages = (*engine)->recovery().pages_read;
    pool_hits = pool.hits() - hits_before;
    benchmark::DoNotOptimize(db);
  }
  state.counters["pages"] = static_cast<double>(pages);
  state.counters["pool_hits"] = static_cast<double>(pool_hits);
}
BENCHMARK(BM_OpenFromDiskWarm);

}  // namespace
}  // namespace xia

#include "bench_main.h"  // Custom main: BENCHMARK_MAIN + --stats-json.
