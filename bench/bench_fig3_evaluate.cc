// Figure 3: estimating the benefit of an index configuration — now as a
// google-benchmark harness over the advisor's hot path, the what-if
// evaluation of whole configurations. Each benchmark sweeps the thread
// knob (arg 0), so `--benchmark_format=json` output doubles as the CI
// perf artifact tracking the parallel speedup of Evaluate Indexes mode.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "advisor/benefit.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "optimizer/explain.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"
#include "xpath/parser.h"

namespace xia {
namespace {

/// Shared database + workload fixture, built once. The workload is the
/// XMark set repeated several times so a single evaluation has enough
/// queries to fan out.
struct Fixture {
  Database db;
  Workload workload;
  Catalog catalog;
  CostModel cost_model;
  std::unique_ptr<Optimizer> optimizer;
  std::vector<CandidateIndex> candidates;
  std::vector<IndexDefinition> config_defs;

  Fixture() {
    XMarkParams params;
    XIA_CHECK(PopulateXMark(&db, "xmark", 30, params, 42).ok());
    Workload base = MakeXMarkWorkload("xmark");
    for (int rep = 0; rep < 6; ++rep) {
      for (const Query& q : base.queries()) workload.AddQuery(q);
    }
    optimizer = std::make_unique<Optimizer>(&db, cost_model);

    const std::vector<std::pair<std::string, ValueType>> specs = {
        {"/site/regions/namerica/item/quantity", ValueType::kDouble},
        {"/site/regions/africa/item/quantity", ValueType::kDouble},
        {"/site/regions/samerica/item/price", ValueType::kDouble},
        {"/site/regions/*/item/quantity", ValueType::kDouble},
        {"/site/regions/*/item/*", ValueType::kDouble},
        {"/site/regions/*/item/*", ValueType::kVarchar},
        {"//item/payment", ValueType::kVarchar},
        {"/site/people/person/profile/@income", ValueType::kDouble},
    };
    for (const auto& [text, type] : specs) {
      CandidateIndex cand;
      cand.def.collection = "xmark";
      cand.def.pattern = *ParsePathPattern(text);
      cand.def.type = type;
      cand.stats = EstimateVirtualIndex(*db.synopsis("xmark"), cand.def,
                                        cost_model.storage);
      config_defs.push_back(cand.def);
      candidates.push_back(std::move(cand));
    }
  }
};

Fixture* SharedFixture() {
  static Fixture* fixture = new Fixture();
  return fixture;
}

/// Evaluate one full configuration, per-query fan-out at `threads`. A
/// fresh evaluator per iteration defeats the configuration memo, so every
/// iteration performs the real what-if optimizer calls.
void BM_EvaluateConfiguration(benchmark::State& state) {
  Fixture& f = *SharedFixture();
  int threads = static_cast<int>(state.range(0));
  ContainmentCache cache;
  std::vector<int> config;
  for (size_t i = 0; i < f.candidates.size(); ++i) {
    config.push_back(static_cast<int>(i));
  }
  for (auto _ : state) {
    ConfigurationEvaluator evaluator(f.optimizer.get(), &f.workload,
                                     &f.catalog, &f.candidates, &cache,
                                     /*account_update_cost=*/true, threads);
    auto eval = evaluator.Evaluate(config);
    XIA_CHECK(eval.ok());
    benchmark::DoNotOptimize(eval->workload_cost);
  }
  state.counters["queries"] =
      static_cast<double>(f.workload.queries().size());
}
BENCHMARK(BM_EvaluateConfiguration)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// A greedy-style scoring round: every candidate evaluated stand-alone in
/// one EvaluateMany batch (configuration-level fan-out).
void BM_EvaluateManySingletons(benchmark::State& state) {
  Fixture& f = *SharedFixture();
  int threads = static_cast<int>(state.range(0));
  ContainmentCache cache;
  std::vector<std::vector<int>> singletons;
  for (size_t i = 0; i < f.candidates.size(); ++i) {
    singletons.push_back({static_cast<int>(i)});
  }
  for (auto _ : state) {
    ConfigurationEvaluator evaluator(f.optimizer.get(), &f.workload,
                                     &f.catalog, &f.candidates, &cache,
                                     /*account_update_cost=*/true, threads);
    auto evals = evaluator.EvaluateMany(singletons);
    for (const auto& eval : evals) XIA_CHECK(eval.ok());
    benchmark::DoNotOptimize(evals);
  }
  state.counters["configs"] = static_cast<double>(singletons.size());
}
BENCHMARK(BM_EvaluateManySingletons)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The raw EXPLAIN mode (WhatIfSession::EvaluateWorkload path).
void BM_EvaluateIndexesMode(benchmark::State& state) {
  Fixture& f = *SharedFixture();
  int threads = static_cast<int>(state.range(0));
  ContainmentCache cache;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  for (auto _ : state) {
    auto result =
        EvaluateIndexesMode(*f.optimizer, f.workload.queries(), f.config_defs,
                            f.catalog, &cache, pool.get());
    XIA_CHECK(result.ok());
    benchmark::DoNotOptimize(result->total_weighted_cost);
  }
}
BENCHMARK(BM_EvaluateIndexesMode)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xia

BENCHMARK_MAIN();
