// Figure 3: estimating the benefit of an index configuration. For each
// workload query, invoke the optimizer in the Evaluate Indexes mode under
// several hypothetical configurations and print the estimated costs —
// the demo's cost-comparison screen.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/string_util.h"
#include "optimizer/explain.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"
#include "xpath/parser.h"

using namespace xia;

namespace {

std::vector<IndexDefinition> MakeConfig(
    const std::vector<std::pair<std::string, ValueType>>& specs) {
  std::vector<IndexDefinition> out;
  for (const auto& [pattern_text, type] : specs) {
    Result<PathPattern> pattern = ParsePathPattern(pattern_text);
    if (!pattern.ok()) continue;
    IndexDefinition def;
    def.collection = "xmark";
    def.pattern = std::move(*pattern);
    def.type = type;
    out.push_back(std::move(def));
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "== Figure 3: Evaluate Indexes mode — configuration "
               "cost estimation ==\n\n";

  Database db;
  XMarkParams params;
  if (!PopulateXMark(&db, "xmark", 12, params, 42).ok()) return 1;
  Workload workload = MakeXMarkWorkload("xmark");

  struct NamedConfig {
    const char* label;
    std::vector<IndexDefinition> defs;
  };
  std::vector<NamedConfig> configs;
  configs.push_back({"no indexes", {}});
  configs.push_back(
      {"exact: region quantity/price indexes",
       MakeConfig({{"/site/regions/namerica/item/quantity",
                    ValueType::kDouble},
                   {"/site/regions/africa/item/quantity",
                    ValueType::kDouble},
                   {"/site/regions/samerica/item/price",
                    ValueType::kDouble}})});
  configs.push_back(
      {"generalized: /site/regions/*/item/*",
       MakeConfig({{"/site/regions/*/item/*", ValueType::kDouble},
                   {"/site/regions/*/item/*", ValueType::kVarchar}})});
  configs.push_back(
      {"broad: //* (universal)",
       MakeConfig({{"//*", ValueType::kVarchar},
                   {"//*", ValueType::kDouble}})});

  ContainmentCache cache;
  CostModel cost_model;
  Optimizer optimizer(&db, cost_model);
  Catalog base;

  std::vector<EvaluateIndexesResult> results;
  for (const NamedConfig& config : configs) {
    Result<EvaluateIndexesResult> r = EvaluateIndexesMode(
        optimizer, workload.queries(), config.defs, base, &cache);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    results.push_back(std::move(*r));
  }

  std::printf("%-6s", "query");
  for (const NamedConfig& config : configs) {
    std::printf(" %28.28s", config.label);
  }
  std::printf("\n");
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    std::printf("%-6s", workload.queries()[qi].id.c_str());
    for (const EvaluateIndexesResult& r : results) {
      std::printf(" %28.1f", r.plans[qi].total_cost);
    }
    std::printf("\n");
  }
  std::printf("%-6s", "TOTAL");
  for (const EvaluateIndexesResult& r : results) {
    std::printf(" %28.1f", r.total_weighted_cost);
  }
  std::printf("\n\n");

  for (size_t c = 0; c < configs.size(); ++c) {
    std::cout << "[" << configs[c].label << "] indexes used:";
    if (results[c].index_use_counts.empty()) std::cout << " (none)";
    for (const auto& [name, count] : results[c].index_use_counts) {
      std::cout << " " << name << "(x" << count << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\nExample plan under the generalized configuration:\n"
            << results[2].plans[0].Explain();
  return 0;
}
