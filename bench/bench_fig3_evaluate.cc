// Figure 3: estimating the benefit of an index configuration — now as a
// google-benchmark harness over the advisor's hot path, the what-if
// evaluation of whole configurations. Each benchmark sweeps the thread
// knob (arg 0) and the what-if cost cache toggle (arg 1), so
// `--benchmark_format=json` output doubles as the CI perf artifact
// tracking both the parallel speedup and the caching speedup of Evaluate
// Indexes mode. Cache hit/miss/bypass counts surface as benchmark
// counters.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "advisor/benefit.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "optimizer/explain.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"
#include "xpath/parser.h"

namespace xia {
namespace {

/// Shared database + workload fixture, built once. The workload is the
/// XMark set repeated several times so a single evaluation has enough
/// queries to fan out.
struct Fixture {
  Database db;
  Workload workload;
  Catalog catalog;
  CostModel cost_model;
  std::unique_ptr<Optimizer> optimizer;
  std::vector<CandidateIndex> candidates;
  std::vector<IndexDefinition> config_defs;

  Fixture() {
    XMarkParams params;
    XIA_CHECK(PopulateXMark(&db, "xmark", 30, params, 42).ok());
    Workload base = MakeXMarkWorkload("xmark");
    for (int rep = 0; rep < 6; ++rep) {
      for (const Query& q : base.queries()) workload.AddQuery(q);
    }
    optimizer = std::make_unique<Optimizer>(&db, cost_model);

    const std::vector<std::pair<std::string, ValueType>> specs = {
        {"/site/regions/namerica/item/quantity", ValueType::kDouble},
        {"/site/regions/africa/item/quantity", ValueType::kDouble},
        {"/site/regions/samerica/item/price", ValueType::kDouble},
        {"/site/regions/*/item/quantity", ValueType::kDouble},
        {"/site/regions/*/item/*", ValueType::kDouble},
        {"/site/regions/*/item/*", ValueType::kVarchar},
        {"//item/payment", ValueType::kVarchar},
        {"/site/people/person/profile/@income", ValueType::kDouble},
    };
    for (const auto& [text, type] : specs) {
      CandidateIndex cand;
      cand.def.collection = "xmark";
      cand.def.pattern = *ParsePathPattern(text);
      cand.def.type = type;
      cand.stats = EstimateVirtualIndex(*db.synopsis("xmark"), cand.def,
                                        cost_model.storage);
      config_defs.push_back(cand.def);
      candidates.push_back(std::move(cand));
    }
  }
};

Fixture* SharedFixture() {
  static Fixture* fixture = new Fixture();
  return fixture;
}

/// Copies a counter snapshot into the benchmark's counter row.
void ReportCacheCounters(benchmark::State& state,
                         const AdvisorCacheCounters& counters) {
  state.counters["cost_hits"] = static_cast<double>(counters.cost.hits);
  state.counters["cost_misses"] = static_cast<double>(counters.cost.misses);
  state.counters["cost_bypasses"] =
      static_cast<double>(counters.cost.bypasses);
}

/// Evaluate one full configuration, per-query fan-out at `threads` (arg
/// 0), what-if cost cache toggled by arg 1. A fresh evaluator per
/// iteration defeats the configuration memo and empties the plan cache,
/// so every iteration does real optimizer work; with the cache on, the
/// win comes from deduplicating repeated queries and shared relevance
/// signatures within the one evaluation.
void BM_EvaluateConfiguration(benchmark::State& state) {
  Fixture& f = *SharedFixture();
  int threads = static_cast<int>(state.range(0));
  bool cache_on = state.range(1) != 0;
  ContainmentCache cache;
  std::vector<int> config;
  for (size_t i = 0; i < f.candidates.size(); ++i) {
    config.push_back(static_cast<int>(i));
  }
  AdvisorCacheCounters last;
  for (auto _ : state) {
    ConfigurationEvaluator evaluator(f.optimizer.get(), &f.workload,
                                     &f.catalog, &f.candidates, &cache,
                                     /*account_update_cost=*/true, threads,
                                     cache_on);
    auto eval = evaluator.Evaluate(config);
    XIA_CHECK(eval.ok());
    benchmark::DoNotOptimize(eval->workload_cost);
    last = evaluator.cache_counters();
  }
  state.counters["queries"] =
      static_cast<double>(f.workload.queries().size());
  ReportCacheCounters(state, last);
}
BENCHMARK(BM_EvaluateConfiguration)
    ->ArgNames({"threads", "cache"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// A greedy-style scoring round: every candidate evaluated stand-alone in
/// one EvaluateMany batch (configuration-level fan-out). With the cache
/// on, the batch collapses to the distinct (query, relevance signature)
/// tasks shared across all singleton configurations.
void BM_EvaluateManySingletons(benchmark::State& state) {
  Fixture& f = *SharedFixture();
  int threads = static_cast<int>(state.range(0));
  bool cache_on = state.range(1) != 0;
  ContainmentCache cache;
  std::vector<std::vector<int>> singletons;
  for (size_t i = 0; i < f.candidates.size(); ++i) {
    singletons.push_back({static_cast<int>(i)});
  }
  AdvisorCacheCounters last;
  for (auto _ : state) {
    ConfigurationEvaluator evaluator(f.optimizer.get(), &f.workload,
                                     &f.catalog, &f.candidates, &cache,
                                     /*account_update_cost=*/true, threads,
                                     cache_on);
    auto evals = evaluator.EvaluateMany(singletons);
    for (const auto& eval : evals) XIA_CHECK(eval.ok());
    benchmark::DoNotOptimize(evals);
    last = evaluator.cache_counters();
  }
  state.counters["configs"] = static_cast<double>(singletons.size());
  ReportCacheCounters(state, last);
}
BENCHMARK(BM_EvaluateManySingletons)
    ->ArgNames({"threads", "cache"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The raw EXPLAIN mode (WhatIfSession::EvaluateWorkload path). The plan
/// cache persists across iterations here, matching its real lifetime — a
/// session cache carried across repeated workload evaluations — so
/// cache-on steady state is nearly all hits.
void BM_EvaluateIndexesMode(benchmark::State& state) {
  Fixture& f = *SharedFixture();
  int threads = static_cast<int>(state.range(0));
  bool cache_on = state.range(1) != 0;
  ContainmentCache cache;
  WhatIfCostCache cost_cache(cache_on);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  for (auto _ : state) {
    auto result =
        EvaluateIndexesMode(*f.optimizer, f.workload.queries(), f.config_defs,
                            f.catalog, &cache, pool.get(), &cost_cache);
    XIA_CHECK(result.ok());
    benchmark::DoNotOptimize(result->total_weighted_cost);
  }
  AdvisorCacheCounters counters;
  counters.cost = cost_cache.stats();
  counters.containment = cache.stats();
  ReportCacheCounters(state, counters);
}
BENCHMARK(BM_EvaluateIndexesMode)
    ->ArgNames({"threads", "cache"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xia

#include "bench_main.h"  // Custom main: BENCHMARK_MAIN + --stats-json.
