// Figure 5: analyzing the XML Index Advisor recommendations. Prints the
// three-way per-query cost comparison (no indexes / recommended /
// overtrained), then evaluates the recommended configuration on queries
// beyond the input workload — the demo's generalization payoff screen —
// and finally shows the effect of hand-editing the configuration.

#include <iostream>

#include "advisor/advisor.h"
#include "advisor/analysis.h"
#include "common/string_util.h"
#include "workload/variation.h"
#include "workload/xmark_queries.h"
#include "xmldata/xmark_gen.h"

using namespace xia;

int main() {
  std::cout << "== Figure 5: recommendation analysis ==\n\n";

  Database db;
  XMarkParams params;
  if (!PopulateXMark(&db, "xmark", 12, params, 42).ok()) return 1;
  Workload workload = MakeXMarkWorkload("xmark");
  Catalog catalog;

  AdvisorOptions options;
  options.space_budget_bytes = 128.0 * 1024;
  options.algorithm = SearchAlgorithm::kTopDown;
  Advisor advisor(&db, &catalog, options);
  Result<Recommendation> rec = advisor.Recommend(workload);
  if (!rec.ok()) {
    std::cerr << rec.status().ToString() << "\n";
    return 1;
  }
  std::cout << rec->Report() << "\n";

  Result<RecommendationAnalysis> analysis = AnalyzeRecommendation(
      db, catalog, workload, *rec, options.cost_model, advisor.cache());
  if (!analysis.ok()) {
    std::cerr << analysis.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Per-query estimated costs (training workload):\n"
            << analysis->ToTable() << "\n";

  // Queries beyond the input workload.
  Random rng(99);
  Workload unseen = MakeXMarkUnseenWorkload("xmark", &rng, 12);
  Result<EvaluateIndexesResult> unseen_none =
      EvaluateConfigurationOnWorkload(db, catalog, {}, unseen,
                                      options.cost_model, advisor.cache());
  Result<EvaluateIndexesResult> unseen_rec =
      EvaluateConfigurationOnWorkload(db, catalog, rec->indexes, unseen,
                                      options.cost_model, advisor.cache());
  if (!unseen_none.ok() || !unseen_rec.ok()) return 1;
  std::cout << "Unseen queries (12 synthetic variations):\n";
  for (size_t i = 0; i < unseen.size(); ++i) {
    std::cout << "  " << unseen.queries()[i].id << ": "
              << FormatDouble(unseen_none->plans[i].total_cost) << " -> "
              << FormatDouble(unseen_rec->plans[i].total_cost) << "  via "
              << unseen_rec->plans[i].access.ToString() << "\n";
  }
  std::cout << "  TOTAL: "
            << FormatDouble(unseen_none->total_weighted_cost) << " -> "
            << FormatDouble(unseen_rec->total_weighted_cost) << "\n\n";

  // Modify the configuration: drop the largest index, re-evaluate.
  if (!rec->indexes.empty()) {
    std::vector<IndexDefinition> modified = rec->indexes;
    modified.pop_back();
    Result<EvaluateIndexesResult> after = EvaluateConfigurationOnWorkload(
        db, catalog, modified, workload, options.cost_model,
        advisor.cache());
    if (after.ok()) {
      std::cout << "What-if: drop '"
                << rec->indexes.back().pattern.ToString()
                << "' from the configuration:\n  training workload cost "
                << FormatDouble(analysis->total_recommended) << " -> "
                << FormatDouble(after->total_weighted_cost) << "\n";
    }
  }
  return 0;
}
