// Buffer-pool behaviour: physical page reads for scan vs index plans,
// cold and warm, across pool sizes. Shows why the advisor's I/O-heavy
// cost model is the right *ordering* signal even when re-execution is
// cache-warm: indexes keep their advantage at every pool size, and warm
// hit ratios favor the small touched sets of index plans.

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/string_util.h"
#include "exec/executor.h"
#include "index/index_builder.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "xmldata/xmark_gen.h"
#include "xpath/parser.h"

using namespace xia;

int main() {
  std::cout << "== Buffer pool: cold/warm physical reads by plan ==\n\n";

  Database db;
  XMarkParams params;
  if (!PopulateXMark(&db, "xmark", 30, params, 42).ok()) return 1;

  Catalog catalog;
  CostModel cost_model;
  IndexDefinition def;
  def.name = "p_idx";
  def.collection = "xmark";
  Result<PathPattern> pattern =
      ParsePathPattern("/site/regions/africa/item/price");
  if (!pattern.ok()) return 1;
  def.pattern = *pattern;
  def.type = ValueType::kDouble;
  Result<PathIndex> built = BuildIndex(db, def);
  if (!built.ok()) return 1;
  if (!catalog
           .AddPhysical(std::make_shared<PathIndex>(std::move(*built)),
                        cost_model.storage)
           .ok()) {
    return 1;
  }

  Result<Query> query = ParseQuery(
      "for $i in doc(\"xmark\")/site/regions/africa/item "
      "where $i/price > 480 return $i/name");
  if (!query.ok()) return 1;
  ContainmentCache cache;
  Optimizer optimizer(&db, cost_model);
  Catalog empty;
  Result<QueryPlan> scan_plan = optimizer.Optimize(*query, empty, &cache);
  Result<QueryPlan> idx_plan = optimizer.Optimize(*query, catalog, &cache);
  if (!scan_plan.ok() || !idx_plan.ok()) return 1;

  std::printf("%-12s %-8s %12s %12s %12s %10s\n", "pool(pages)", "plan",
              "cold-misses", "warm-misses", "warm-hits", "hit-ratio");
  for (size_t pool_pages : {64, 512, 4096, 100000}) {
    for (bool use_index : {false, true}) {
      const QueryPlan& plan = use_index ? *idx_plan : *scan_plan;
      BufferPool pool(pool_pages);
      Executor executor(&db, &catalog, cost_model, &pool);
      Result<ExecResult> cold = executor.Execute(plan);
      Result<ExecResult> warm = executor.Execute(plan);
      if (!cold.ok() || !warm.ok()) return 1;
      double total_warm = static_cast<double>(warm->buffer_hits +
                                              warm->buffer_misses);
      std::printf("%-12zu %-8s %12lu %12lu %12lu %9.0f%%\n", pool_pages,
                  use_index ? "index" : "scan",
                  static_cast<unsigned long>(cold->buffer_misses),
                  static_cast<unsigned long>(warm->buffer_misses),
                  static_cast<unsigned long>(warm->buffer_hits),
                  total_warm == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(warm->buffer_hits) /
                            total_warm);
    }
  }
  std::cout << "\nExpected shape: index plans touch far fewer cold pages; "
               "large pools make\nre-execution fully warm; tiny pools "
               "thrash under scans but still hold the\nindex plan's small "
               "working set.\n";
  return 0;
}
